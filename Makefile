# Convenience targets; everything below is plain dune + the CLI.

.PHONY: all build test bench bench-smoke serve-smoke obs-smoke tune-smoke topo-smoke analyze-smoke check fmt smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Quick machine-checkable slice of the bench harness: the throughput/
# allocation study only, at reduced trace length. Fails if the BENCH
# JSON is not produced or a steering policy started allocating on the
# decision path.
# The throughput study enforces the scaling floor (>=1.5x at 2
# domains, >=3x at 4; exits 1 with a one-line diagnostic on a miss)
# and records the speedup table in the run ledger at
# _build/bench-runs. Hosts that cannot run the checked domain count in
# parallel print an explicit SKIP instead — see bench/main.ml.
bench-smoke: build
	@rm -rf _build/bench-runs
	CLUSTEER_BENCH_STUDY=throughput CLUSTEER_BENCH_UOPS=2000 \
	  CLUSTEER_BENCH_REQUIRE_SPEEDUP=1 CLUSTEER_BENCH_LEDGER=_build/bench-runs \
	  CLUSTEER_BENCH_JSON=_build/bench.json dune exec bench/main.exe
	@grep -q '"suite_throughput"' _build/bench.json
	@grep -q '"steering_alloc_words_per_decide":{"op":0.0,"op-parallel":0.0,"dep":0.0,"vc2":0.0}' \
	  _build/bench.json
	@grep -q '"kind":"bench"' _build/bench-runs/index.jsonl
	@echo "bench-smoke: OK (_build/bench.json, ledger _build/bench-runs)"

# End-to-end slice of the service layer: start a server on a temp
# socket, submit the same small batch twice, and assert over the wire
# that (1) the second run is served entirely from cache with
# bit-identical bytes and 0 simulations run, (2) an already-expired
# deadline is rejected with timeout, not simulated, and (3) the
# hit/miss/simulation counters agree.
serve-smoke: build
	@rm -rf _build/serve-smoke && mkdir -p _build/serve-smoke
	@set -e; \
	csteer=_build/default/bin/csteer.exe; d=_build/serve-smoke; \
	$$csteer serve --socket $$d/serve.sock --cache-dir $$d/cache \
	  2> $$d/serve.log & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do [ -S $$d/serve.sock ] && break; sleep 0.1; done; \
	[ -S $$d/serve.sock ] || { echo "serve-smoke: server did not start"; exit 1; }; \
	printf '%s\n%s\n' \
	  '{"workload":"gzip-1","policy":"vc2","uops":2000}' \
	  '{"workload":"mcf","policy":"op","uops":2000}' > $$d/batch.jsonl; \
	$$csteer batch --socket $$d/serve.sock --results-only $$d/batch.jsonl \
	  > $$d/first.jsonl 2> $$d/first.log; \
	$$csteer batch --socket $$d/serve.sock --results-only $$d/batch.jsonl \
	  > $$d/second.jsonl 2> $$d/second.log; \
	cmp $$d/first.jsonl $$d/second.jsonl; \
	grep -q '2 ok (2 cached)' $$d/second.log; \
	$$csteer submit --socket $$d/serve.sock -w gzip-1 -n 3000 \
	  --deadline-ms 0 --json > $$d/timeout.json; \
	grep -q '"reason":"timeout"' $$d/timeout.json; \
	$$csteer submit --socket $$d/serve.sock --stats > $$d/stats.json; \
	grep -q '"serve.cache.hits":2' $$d/stats.json; \
	grep -q '"serve.cache.misses":3' $$d/stats.json; \
	grep -q '"serve.simulations":2' $$d/stats.json; \
	grep -q '"serve.rejected.timeout":1' $$d/stats.json; \
	$$csteer submit --socket $$d/serve.sock --shutdown 2>> $$d/serve.log; \
	wait $$pid; trap - EXIT; \
	echo "serve-smoke: OK (_build/serve-smoke)"

# Operational-telemetry slice: one profiled simulation recorded into a
# run ledger, then read back through `csteer runs` (summary JSON, full
# entry with GC accounting and phase-timing percentiles) and a local
# Prometheus dump through `csteer metrics`.
obs-smoke: build
	@rm -rf _build/obs-smoke && mkdir -p _build/obs-smoke
	@set -e; \
	csteer=_build/default/bin/csteer.exe; d=_build/obs-smoke; \
	$$csteer simulate -w 164.gzip-1 -p vc2 -n 2000 --ledger $$d/runs \
	  > $$d/simulate.txt 2> $$d/simulate.log; \
	grep -q '"kind":"simulate"' $$d/runs/index.jsonl; \
	$$csteer runs list --dir $$d/runs --json > $$d/list.json; \
	grep -q '"kind":"simulate"' $$d/list.json; \
	$$csteer runs show --dir $$d/runs 1 > $$d/run1.json; \
	grep -q 'engine_minor_words_per_uop' $$d/run1.json; \
	grep -q 'p99' $$d/run1.json; \
	$$csteer metrics -w 164.gzip-1 -n 2000 > $$d/metrics.txt; \
	grep -q '# TYPE engine_copyq_depth histogram' $$d/metrics.txt; \
	grep -q 'profile_engine_commit_ns_count' $$d/metrics.txt; \
	echo "obs-smoke: OK (_build/obs-smoke)"

# One full champion/challenger cycle of the auto-tuner on a tiny
# budget: a 4-evaluation grid over two workloads, per-evaluation
# ledger entries, the study report re-read as JSON, and the winner
# promoted to a champion artifact. This is exactly the worked session
# EXPERIMENTS.md walks through.
tune-smoke: build
	@rm -rf _build/tune-smoke && mkdir -p _build/tune-smoke
	@set -e; \
	csteer=_build/default/bin/csteer.exe; d=_build/tune-smoke; \
	$$csteer tune run --space vc --search grid --max-evals 4 \
	  -w gzip-1,vpr-1 -n 4000 --out $$d/tune --ledger $$d/runs \
	  > $$d/run.txt 2> $$d/run.log; \
	grep -q 'study written' $$d/run.txt; \
	grep -q '"kind":"tune"' $$d/runs/index.jsonl; \
	[ "$$(grep -c '"kind":"tune"' $$d/runs/index.jsonl)" -ge 4 ]; \
	$$csteer tune report --study $$d/tune/study.json --json > $$d/report.json; \
	grep -q '"kind":"tune_study"' $$d/report.json; \
	grep -q '"challenger_wins"' $$d/report.json; \
	$$csteer tune promote --study $$d/tune/study.json > $$d/promote.txt; \
	grep -q '"kind":"tune_champion"' $$d/tune/champion.json; \
	echo "tune-smoke: OK (_build/tune-smoke)"

# Interconnect-topology slice: an adversarial workload on a 2x2 mesh
# must surface the topology-aware steering counters
# (steer.remap.hops appears only on non-uniform fabrics) and stay
# bit-identical across runs; the topology inspector round-trips; and
# the topology bench study emits one BENCH JSON line per fabric.
topo-smoke: build
	@rm -rf _build/topo-smoke && mkdir -p _build/topo-smoke
	@set -e; \
	csteer=_build/default/bin/csteer.exe; d=_build/topo-smoke; \
	$$csteer simulate -w adv-fanout -c 4 --topology mesh2x2 -p vc2 \
	  -n 3000 --json > $$d/mesh1.json 2> $$d/mesh.log; \
	$$csteer simulate -w adv-fanout -c 4 --topology mesh2x2 -p vc2 \
	  -n 3000 --json > $$d/mesh2.json 2>> $$d/mesh.log; \
	cmp $$d/mesh1.json $$d/mesh2.json; \
	grep -q '"steer.remap.hops"' $$d/mesh1.json; \
	grep -q '"kind":"mesh"' $$d/mesh1.json; \
	$$csteer simulate -w adv-fanout -c 4 -p vc2 -n 3000 --json \
	  > $$d/p2p.json 2>> $$d/mesh.log; \
	! grep -q '"steer.remap.hops"' $$d/p2p.json; \
	$$csteer topo show hier2x4 --json > $$d/hier.json; \
	grep -q '"uplink_latency":4' $$d/hier.json; \
	CLUSTEER_BENCH_STUDY=topo CLUSTEER_BENCH_UOPS=2000 \
	  CLUSTEER_BENCH_JSON=$$d/bench.json dune exec bench/main.exe \
	  > $$d/bench.txt; \
	grep -q '"topology_study"' $$d/bench.json; \
	grep -q '"topology":"hier2x4"' $$d/bench.json; \
	echo "topo-smoke: OK (_build/topo-smoke)"

# Static-analysis slice: the analyzer must come back clean (--strict)
# on every builtin workload x policy over every builtin fabric; the
# drift checker must confirm real runs of vc2 and op stay inside the
# static copy/remap bounds on p2p and hier2x4; a deliberately
# corrupted placement must be rejected with the stable CM006 code; an
# analyze run lands in the ledger; and the cost-model accuracy bench
# study reports zero drift errors.
analyze-smoke: build
	@rm -rf _build/analyze-smoke && mkdir -p _build/analyze-smoke
	@set -e; \
	csteer=_build/default/bin/csteer.exe; d=_build/analyze-smoke; \
	for topo in p2p bus ring mesh4x2 hier2x4; do \
	  $$csteer analyze --all --strict --topology $$topo > $$d/$$topo.txt; \
	  grep -q 'target(s): ok' $$d/$$topo.txt; \
	done; \
	$$csteer analyze --all -p vc2,op --vs-run -n 6000 --strict \
	  > $$d/drift-p2p.txt; \
	grep -q 'with drift check: ok' $$d/drift-p2p.txt; \
	grep -q 'CM100' $$d/drift-p2p.txt; \
	$$csteer analyze --all -p vc2,op --topology hier2x4 --vs-run -n 6000 \
	  --strict > $$d/drift-hier.txt; \
	grep -q 'with drift check: ok' $$d/drift-hier.txt; \
	$$csteer compile -w gzip-1 -p ob --emit $$d/ok.annot > /dev/null; \
	awk 'NR==8 {$$4=9} {print}' $$d/ok.annot > $$d/bad.annot; \
	if $$csteer analyze -w gzip-1 -p ob --annot $$d/bad.annot \
	  > $$d/bad.txt 2>&1; then \
	  echo "analyze-smoke: corrupted placement not rejected"; exit 1; \
	fi; \
	grep -q 'CM006' $$d/bad.txt; \
	$$csteer analyze -w mcf -p vc2 --vs-run -n 4000 --ledger $$d/runs \
	  > /dev/null 2> $$d/ledger.log; \
	grep -q '"kind":"analyze"' $$d/runs/index.jsonl; \
	CLUSTEER_BENCH_STUDY=predict CLUSTEER_BENCH_UOPS=3000 \
	  CLUSTEER_BENCH_JSON=$$d/predict.json dune exec bench/main.exe \
	  > $$d/predict.txt; \
	grep -q '"prediction_study"' $$d/predict.json; \
	! grep -q '"drift_errors":[1-9]' $$d/predict.json; \
	echo "analyze-smoke: OK (_build/analyze-smoke)"

# Static verification of every built-in workload under each software
# steering scheme: IR well-formedness, chain/leader invariants and
# static placement, with warnings promoted to failures.
check: build
	dune exec bin/csteer.exe -- check --all --strict

# Formatting is checked only where the formatter exists; the dune rules
# are always available (`dune build @fmt`) once ocamlformat is installed.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt: ocamlformat not installed, skipping"; \
	fi

# Fast end-to-end confidence: full build, the test suite, the static
# verifier over every built-in workload, a parallel deterministic
# sweep, the bench smoke, the service-layer smoke, the auto-tuner
# cycle, the interconnect-topology slice, the quickstart example (so
# examples/ cannot bit-rot silently), and one traced 10k-uop
# simulation whose Chrome trace must be valid JSON with interval
# telemetry.
smoke: build test check fmt bench-smoke serve-smoke obs-smoke tune-smoke topo-smoke analyze-smoke
	dune exec examples/quickstart.exe
	dune exec bin/csteer.exe -- simulate -w mcf -n 10000 \
	  --trace-out _build/smoke_trace.json --trace-format json \
	  --stats-interval 1000
	@grep -q '"traceEvents"' _build/smoke_trace.json
	@echo "smoke: OK (_build/smoke_trace.json)"

clean:
	dune clean
