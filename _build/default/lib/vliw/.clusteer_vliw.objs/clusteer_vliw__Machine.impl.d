lib/vliw/machine.ml: Clusteer_isa Printf
