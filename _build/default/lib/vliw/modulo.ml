open Clusteer_isa
module Ddg = Clusteer_ddg.Ddg
module Critical = Clusteer_ddg.Critical

type edge = { src : int; dst : int; latency : int; distance : int }

type loop_ddg = { uops : Uop.t array; edges : edge list }

let loop_ddg_of_body uops =
  let n = Array.length uops in
  let acyclic = Ddg.build uops in
  let intra =
    List.concat_map
      (List.map (fun (e : Ddg.edge) ->
           { src = e.Ddg.src; dst = e.Ddg.dst; latency = e.Ddg.latency; distance = 0 }))
      (Array.to_list acyclic.Ddg.succs)
  in
  (* Loop-carried register dependences: a use with no earlier
     definition in the body reads the previous iteration's (last)
     definition. *)
  let last_def = Hashtbl.create 16 in
  Array.iteri
    (fun i (u : Uop.t) ->
      match u.Uop.dst with
      | Some d -> Hashtbl.replace last_def d i
      | None -> ())
    uops;
  let has_earlier_def reg pos =
    let found = ref false in
    for j = 0 to pos - 1 do
      match uops.(j).Uop.dst with
      | Some d when Reg.equal d reg -> found := true
      | _ -> ()
    done;
    !found
  in
  let carried = ref [] in
  Array.iteri
    (fun i (u : Uop.t) ->
      Array.iter
        (fun src ->
          if not (has_earlier_def src i) then
            match Hashtbl.find_opt last_def src with
            | Some j ->
                carried :=
                  {
                    src = j;
                    dst = i;
                    latency = Ddg.static_latency uops.(j);
                    distance = 1;
                  }
                  :: !carried
            | None -> ())
        u.Uop.srcs)
    uops;
  (* Loop-carried memory dependence: the last store of a stream feeds
     next-iteration loads of the same stream that precede it. *)
  let last_store = Hashtbl.create 4 in
  Array.iteri
    (fun i (u : Uop.t) ->
      match u.Uop.opcode with
      | Opcode.Store -> Hashtbl.replace last_store u.Uop.stream i
      | _ -> ())
    uops;
  Array.iteri
    (fun i (u : Uop.t) ->
      match u.Uop.opcode with
      | Opcode.Load -> (
          match Hashtbl.find_opt last_store u.Uop.stream with
          | Some j when j >= i ->
              carried :=
                {
                  src = j;
                  dst = i;
                  latency = Ddg.static_latency uops.(j);
                  distance = 1;
                }
                :: !carried
          | Some _ | None -> ())
      | _ -> ())
    uops;
  ignore n;
  { uops; edges = intra @ List.rev !carried }

(* ---- lower bounds -------------------------------------------------- *)

let class_index = function
  | Machine.Slot_int -> 0
  | Machine.Slot_fp -> 1
  | Machine.Slot_mem -> 2
  | Machine.Slot_move -> 3

let cross_moves g ~assignment =
  (* Distinct (producer, destination cluster) pairs needing a move,
     attributed to the producer's cluster. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let a = assignment.(e.src) and b = assignment.(e.dst) in
      if a <> b then Hashtbl.replace seen (e.src, b) a)
    g.edges;
  Hashtbl.fold (fun _ a acc -> a :: acc) seen []

let res_mii machine g ~assignment =
  let counts = Array.make_matrix machine.Machine.clusters 4 0 in
  Array.iteri
    (fun i (u : Uop.t) ->
      let c = assignment.(i) in
      let k = class_index (Machine.slot_class_of u.Uop.opcode) in
      counts.(c).(k) <- counts.(c).(k) + 1)
    g.uops;
  List.iter
    (fun producer_cluster ->
      counts.(producer_cluster).(class_index Machine.Slot_move) <-
        counts.(producer_cluster).(class_index Machine.Slot_move) + 1)
    (cross_moves g ~assignment);
  let mii = ref 1 in
  Array.iteri
    (fun _c per_class ->
      Array.iteri
        (fun k count ->
          let cap =
            Machine.slots machine
              (match k with
              | 0 -> Machine.Slot_int
              | 1 -> Machine.Slot_fp
              | 2 -> Machine.Slot_mem
              | _ -> Machine.Slot_move)
          in
          if count > 0 then mii := max !mii ((count + cap - 1) / cap))
        per_class)
    counts;
  !mii

let rec_mii g =
  let n = Array.length g.uops in
  if n = 0 then 1
  else begin
    (* Feasible at II iff the graph with weights (latency - II*distance)
       has no positive cycle: longest-path Bellman-Ford stabilises. *)
    let feasible ii =
      let dist = Array.make n 0 in
      let changed = ref true in
      let rounds = ref 0 in
      while !changed && !rounds <= n do
        changed := false;
        incr rounds;
        List.iter
          (fun e ->
            let w = e.latency - (ii * e.distance) in
            if dist.(e.src) + w > dist.(e.dst) then begin
              dist.(e.dst) <- dist.(e.src) + w;
              changed := true
            end)
          g.edges
      done;
      not !changed
    in
    let hi =
      List.fold_left (fun acc e -> acc + e.latency) 1 g.edges
    in
    let rec search lo hi = if lo >= hi then lo else
      let mid = (lo + hi) / 2 in
      if feasible mid then search lo mid else search (mid + 1) hi
    in
    search 1 hi
  end

(* ---- iterative modulo scheduling ------------------------------------ *)

type result = { ii : int; mii : int; times : int array; moves : int }

let comm_latency machine ~assignment e =
  if assignment.(e.src) = assignment.(e.dst) then 0
  else machine.Machine.comm_latency

let schedule machine g ~assignment ?max_ii () =
  let n = Array.length g.uops in
  if Array.length assignment <> n then
    invalid_arg "Vliw.Modulo.schedule: assignment arity";
  Array.iter
    (fun c ->
      if c < 0 || c >= machine.Machine.clusters then
        invalid_arg "Vliw.Modulo.schedule: cluster out of range")
    assignment;
  let moves = List.length (cross_moves g ~assignment) in
  if n = 0 then { ii = 1; mii = 1; times = [||]; moves = 0 }
  else begin
    let mii = max (res_mii machine g ~assignment) (rec_mii g) in
    let max_ii =
      match max_ii with Some m -> m | None -> (4 * mii) + 16
    in
    (* Height priority from the distance-0 subgraph. *)
    let acyclic = Ddg.build g.uops in
    let crit = Critical.analyze acyclic in
    let preds = Array.make n [] in
    List.iter (fun e -> preds.(e.dst) <- e :: preds.(e.dst)) g.edges;
    let try_ii ii =
      let times = Array.make n (-1) in
      let mrt = Array.init machine.Machine.clusters (fun _ -> Array.make_matrix 4 ii 0) in
      let budget = ref (n * 20) in
      let capacity cls =
        Machine.slots machine
          (match cls with
          | 0 -> Machine.Slot_int
          | 1 -> Machine.Slot_fp
          | 2 -> Machine.Slot_mem
          | _ -> Machine.Slot_move)
      in
      let slot_of op = class_index (Machine.slot_class_of g.uops.(op).Uop.opcode) in
      let unschedule op =
        let c = assignment.(op) and k = slot_of op in
        mrt.(c).(k).(times.(op) mod ii) <- mrt.(c).(k).(times.(op) mod ii) - 1;
        times.(op) <- -1
      in
      let book op t =
        let c = assignment.(op) and k = slot_of op in
        mrt.(c).(k).(t mod ii) <- mrt.(c).(k).(t mod ii) + 1;
        times.(op) <- t
      in
      let estart op =
        List.fold_left
          (fun acc e ->
            if times.(e.src) >= 0 then
              max acc
                (times.(e.src) + e.latency
                + comm_latency machine ~assignment e
                - (ii * e.distance))
            else acc)
          0 preds.(op)
      in
      let next_unscheduled () =
        let best = ref (-1) in
        for op = n - 1 downto 0 do
          if times.(op) < 0 then
            if
              !best = -1
              || crit.Critical.height.(op) > crit.Critical.height.(!best)
            then best := op
        done;
        !best
      in
      let ok = ref true in
      let rec loop () =
        let op = next_unscheduled () in
        if op >= 0 then begin
          decr budget;
          if !budget < 0 then ok := false
          else begin
            let lo = estart op in
            let c = assignment.(op) and k = slot_of op in
            let found = ref (-1) in
            for t = lo to lo + ii - 1 do
              if !found < 0 && mrt.(c).(k).(t mod ii) < capacity k then
                found := t
            done;
            let t =
              if !found >= 0 then !found
              else begin
                (* Forced placement: evict the occupants of the slot. *)
                for other = 0 to n - 1 do
                  if
                    other <> op && times.(other) >= 0
                    && assignment.(other) = c
                    && slot_of other = k
                    && times.(other) mod ii = lo mod ii
                  then unschedule other
                done;
                lo
              end
            in
            book op t;
            (* Evict scheduled dependents whose constraint now breaks. *)
            List.iter
              (fun e ->
                if
                  e.src = op && times.(e.dst) >= 0
                  && times.(e.dst)
                     < t + e.latency
                       + comm_latency machine ~assignment e
                       - (ii * e.distance)
                then unschedule e.dst)
              g.edges;
            loop ()
          end
        end
      in
      loop ();
      if !ok then Some times else None
    in
    let rec find ii =
      if ii > max_ii then
        failwith
          (Printf.sprintf "Vliw.Modulo.schedule: no schedule up to II=%d" max_ii)
      else
        match try_ii ii with
        | Some times -> { ii; mii; times; moves }
        | None -> find (ii + 1)
    in
    find mii
  end

let validate machine g ~assignment r =
  let n = Array.length g.uops in
  if Array.length r.times <> n then
    invalid_arg "Vliw.Modulo.validate: arity mismatch";
  Array.iter
    (fun t -> if t < 0 then invalid_arg "Vliw.Modulo.validate: unscheduled op")
    r.times;
  (* Modulo-aware dependences. *)
  List.iter
    (fun e ->
      let comm = comm_latency machine ~assignment e in
      if r.times.(e.dst) < r.times.(e.src) + e.latency + comm - (r.ii * e.distance)
      then
        invalid_arg
          (Printf.sprintf
             "Vliw.Modulo.validate: edge %d->%d violated at II=%d" e.src e.dst
             r.ii))
    g.edges;
  (* Modulo reservation table feasibility (ops only; moves by
     aggregate capacity). *)
  let mrt = Array.init machine.Machine.clusters (fun _ -> Array.make_matrix 4 r.ii 0) in
  Array.iteri
    (fun op t ->
      let c = assignment.(op) in
      let k = class_index (Machine.slot_class_of g.uops.(op).Uop.opcode) in
      mrt.(c).(k).(t mod r.ii) <- mrt.(c).(k).(t mod r.ii) + 1)
    r.times;
  Array.iteri
    (fun _c per_class ->
      Array.iteri
        (fun k row ->
          let cap =
            Machine.slots machine
              (match k with
              | 0 -> Machine.Slot_int
              | 1 -> Machine.Slot_fp
              | 2 -> Machine.Slot_mem
              | _ -> Machine.Slot_move)
          in
          Array.iter
            (fun used ->
              if used > cap then
                invalid_arg "Vliw.Modulo.validate: reservation overflow")
            row)
        per_class)
    mrt;
  (* Move capacity: per producer cluster, moves/iteration must fit the
     move slots over one II. *)
  let per_cluster = Array.make machine.Machine.clusters 0 in
  List.iter
    (fun c -> per_cluster.(c) <- per_cluster.(c) + 1)
    (cross_moves g ~assignment);
  Array.iter
    (fun m ->
      if m > machine.Machine.move_slots * r.ii then
        invalid_arg "Vliw.Modulo.validate: move capacity exceeded")
    per_cluster
