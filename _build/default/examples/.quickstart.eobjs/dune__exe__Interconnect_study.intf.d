examples/interconnect_study.mli:
