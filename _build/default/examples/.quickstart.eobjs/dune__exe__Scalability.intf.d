examples/scalability.mli:
