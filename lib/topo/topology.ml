module Json = Clusteer_obs.Json

type kind =
  | P2p
  | Bus
  | Ring
  | Mesh of { cols : int; rows : int }
  | Hier of { groups : int; group_size : int }

type t = {
  kind : kind;
  clusters : int;
  link_latency : int;
  uplink_latency : int;
  uplink_bandwidth : int;
}

let validate t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if t.clusters <= 0 then err "topology: clusters must be positive"
  else if t.link_latency <= 0 then err "topology: link_latency must be positive"
  else if t.uplink_latency <= 0 then
    err "topology: uplink_latency must be positive"
  else if t.uplink_bandwidth <= 0 then
    err "topology: uplink_bandwidth must be positive"
  else
    match t.kind with
    | P2p | Bus | Ring -> Ok ()
    | Mesh { cols; rows } ->
        if cols <= 0 || rows <= 0 then err "topology: mesh sides must be positive"
        else if cols * rows <> t.clusters then
          err "topology: mesh %dx%d has %d cells, clusters says %d" cols rows
            (cols * rows) t.clusters
        else Ok ()
    | Hier { groups; group_size } ->
        if groups <= 0 || group_size <= 0 then
          err "topology: hier sides must be positive"
        else if groups * group_size <> t.clusters then
          err "topology: hier %dx%d has %d clusters, clusters says %d" groups
            group_size (groups * group_size) t.clusters
        else Ok ()

let checked t =
  match validate t with Ok () -> t | Error m -> invalid_arg m

let make ?(link_latency = 1) ?(uplink_latency = 4) ?(uplink_bandwidth = 1) kind
    ~clusters =
  checked { kind; clusters; link_latency; uplink_latency; uplink_bandwidth }

let p2p ?link_latency ~clusters () = make ?link_latency P2p ~clusters
let bus ?link_latency ~clusters () = make ?link_latency Bus ~clusters
let ring ?link_latency ~clusters () = make ?link_latency Ring ~clusters

let mesh ?link_latency ~cols ~rows () =
  make ?link_latency (Mesh { cols; rows }) ~clusters:(cols * rows)

let hier ?link_latency ?uplink_latency ?uplink_bandwidth ~groups ~group_size ()
    =
  make ?link_latency ?uplink_latency ?uplink_bandwidth
    (Hier { groups; group_size })
    ~clusters:(groups * group_size)

let name t =
  match t.kind with
  | P2p -> "p2p"
  | Bus -> "bus"
  | Ring -> "ring"
  | Mesh { cols; rows } -> Printf.sprintf "mesh%dx%d" cols rows
  | Hier { groups; group_size } -> Printf.sprintf "hier%dx%d" groups group_size

let builtin_names = [ "p2p"; "bus"; "ring"; "mesh4x2"; "hier2x4" ]

let of_name ?(clusters = 4) s =
  let dims prefix =
    (* "mesh4x2" -> Some (4, 2); anything malformed -> None *)
    let plen = String.length prefix in
    if String.length s <= plen then None
    else
      match
        String.index_opt (String.sub s plen (String.length s - plen)) 'x'
      with
      | None -> None
      | Some i -> (
          let a = String.sub s plen i in
          let b = String.sub s (plen + i + 1) (String.length s - plen - i - 1) in
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b -> Some (a, b)
          | _ -> None)
  in
  let guard t = match validate t with Ok () -> Ok t | Error m -> Error m in
  match s with
  | "p2p" -> guard (p2p ~clusters ())
  | "bus" -> guard (bus ~clusters ())
  | "ring" -> guard (ring ~clusters ())
  | _ when String.length s > 4 && String.sub s 0 4 = "mesh" -> (
      match dims "mesh" with
      | Some (cols, rows) when cols > 0 && rows > 0 ->
          guard (mesh ~cols ~rows ())
      | _ -> Error (Printf.sprintf "bad mesh spec %S (want e.g. mesh4x2)" s)
  )
  | _ when String.length s > 4 && String.sub s 0 4 = "hier" -> (
      match dims "hier" with
      | Some (groups, group_size) when groups > 0 && group_size > 0 ->
          guard (hier ~groups ~group_size ())
      | _ -> Error (Printf.sprintf "bad hier spec %S (want e.g. hier2x4)" s)
  )
  | _ ->
      Error
        (Printf.sprintf "unknown topology %S (expected %s, meshCxR or hierGxS)"
           s
           (String.concat ", " [ "p2p"; "bus"; "ring" ]))

let is_uniform t = match t.kind with P2p | Bus -> true | Ring | Mesh _ | Hier _ -> false

let distance t a b =
  if a = b then 0
  else
    match t.kind with
    | P2p | Bus -> 1
    | Ring ->
        let n = t.clusters in
        let fwd = (b - a + n) mod n in
        min fwd (n - fwd)
    | Mesh { cols; _ } ->
        let ax = a mod cols and ay = a / cols in
        let bx = b mod cols and by = b / cols in
        abs (ax - bx) + abs (ay - by)
    | Hier { group_size; _ } ->
        if a / group_size = b / group_size then 1
        else (* egress hop, uplink crossing, ingress hop *) 3

let latency t a b =
  if a = b then 0
  else
    match t.kind with
    | P2p | Bus -> t.link_latency
    | Ring | Mesh _ -> distance t a b * t.link_latency
    | Hier { group_size; _ } ->
        if a / group_size = b / group_size then t.link_latency
        else (2 * t.link_latency) + t.uplink_latency

let distance_matrix t =
  Array.init t.clusters (fun a ->
      Array.init t.clusters (fun b -> distance t a b))

let latency_matrix t =
  Array.init t.clusters (fun a ->
      Array.init t.clusters (fun b -> latency t a b))

let max_latency t =
  let m = ref 0 in
  for a = 0 to t.clusters - 1 do
    for b = 0 to t.clusters - 1 do
      if latency t a b > !m then m := latency t a b
    done
  done;
  !m

let diameter t =
  let d = ref 0 in
  for a = 0 to t.clusters - 1 do
    for b = 0 to t.clusters - 1 do
      if distance t a b > !d then d := distance t a b
    done
  done;
  !d

let mean_distance t =
  let n = t.clusters in
  if n <= 1 then 0.
  else begin
    let sum = ref 0 in
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if a <> b then sum := !sum + distance t a b
      done
    done;
    float_of_int !sum /. float_of_int (n * (n - 1))
  end

let equal a b =
  a.kind = b.kind && a.clusters = b.clusters
  && a.link_latency = b.link_latency
  && a.uplink_latency = b.uplink_latency
  && a.uplink_bandwidth = b.uplink_bandwidth

let describe t =
  match t.kind with
  | P2p ->
      Printf.sprintf
        "bi-directional point-to-point link, %d cycle latency, 1 copy/cycle"
        t.link_latency
  | Bus ->
      Printf.sprintf "shared bus, %d cycle latency, 1 copy/cycle total"
        t.link_latency
  | Ring ->
      Printf.sprintf "%d-cluster ring, %d cycle(s) per hop, 1 copy/cycle per hop"
        t.clusters t.link_latency
  | Mesh { cols; rows } ->
      Printf.sprintf
        "%dx%d mesh, XY routing, %d cycle(s) per hop, 1 copy/cycle per link"
        cols rows t.link_latency
  | Hier { groups; group_size } ->
      Printf.sprintf
        "%d groups of %d clusters; in-group p2p %d cycle(s), cross-group \
         uplink +%d cycle(s), %d channel(s)"
        groups group_size t.link_latency t.uplink_latency t.uplink_bandwidth

let to_json t =
  let dims =
    match t.kind with
    | P2p | Bus | Ring -> []
    | Mesh { cols; rows } ->
        [ ("cols", Json.Int cols); ("rows", Json.Int rows) ]
    | Hier { groups; group_size } ->
        [ ("groups", Json.Int groups); ("group_size", Json.Int group_size) ]
  in
  Json.Obj
    ([
       ( "kind",
         Json.Str
           (match t.kind with
           | P2p -> "p2p"
           | Bus -> "bus"
           | Ring -> "ring"
           | Mesh _ -> "mesh"
           | Hier _ -> "hier") );
       ("clusters", Json.Int t.clusters);
     ]
    @ dims
    @ [
        ("link_latency", Json.Int t.link_latency);
        ("uplink_latency", Json.Int t.uplink_latency);
        ("uplink_bandwidth", Json.Int t.uplink_bandwidth);
      ])

let of_json j =
  let int_field ?default k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some v -> Ok v
    | None -> (
        match default with
        | Some d -> Ok d
        | None -> Error (Printf.sprintf "topology json: missing int %S" k))
  in
  let ( let* ) = Result.bind in
  let* kind_s =
    match Option.bind (Json.member "kind" j) Json.to_str with
    | Some s -> Ok s
    | None -> Error "topology json: missing \"kind\""
  in
  let* clusters = int_field "clusters" in
  let* link_latency = int_field ~default:1 "link_latency" in
  let* uplink_latency = int_field ~default:4 "uplink_latency" in
  let* uplink_bandwidth = int_field ~default:1 "uplink_bandwidth" in
  let* kind =
    match kind_s with
    | "p2p" -> Ok P2p
    | "bus" -> Ok Bus
    | "ring" -> Ok Ring
    | "mesh" ->
        let* cols = int_field "cols" in
        let* rows = int_field "rows" in
        Ok (Mesh { cols; rows })
    | "hier" ->
        let* groups = int_field "groups" in
        let* group_size = int_field "group_size" in
        Ok (Hier { groups; group_size })
    | s -> Error (Printf.sprintf "topology json: unknown kind %S" s)
  in
  let t = { kind; clusters; link_latency; uplink_latency; uplink_bandwidth } in
  let* () = validate t in
  Ok t
