open Clusteer_isa
open Clusteer_uarch
open Clusteer_trace

let make ~name ~annot =
  let decide view duop =
    let id = Dynuop.static_id duop in
    let cluster = annot.Annot.cluster_of.(id) in
    let cluster = if cluster < 0 then 0 else cluster in
    let cluster = if cluster >= view.Policy.clusters then 0 else cluster in
    Policy.Dispatch_to cluster
  in
  {
    Policy.name;
    decide;
    uses_dependence_check = false;
    uses_vote_unit = false;
  }
