lib/vliw/list_sched.ml: Array Clusteer_ddg Clusteer_isa Critical Ddg List Machine Schedule
