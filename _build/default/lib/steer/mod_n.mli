(** MOD_N steering (Baniasadi & Moshovos, MICRO-33 [3] in the paper's
    bibliography): send [n] consecutive micro-ops to a cluster, then
    rotate to the next one.

    The classic low-complexity hardware baseline — perfect long-term
    balance, completely communication-blind. Included beyond the
    paper's Table 3 to position the evaluated schemes against the
    wider literature (the paper's §3.1 discusses this family). *)

val make : ?n:int -> unit -> Clusteer_uarch.Policy.t
(** [n] defaults to 3 (the best-performing variant reported in [3]). *)
