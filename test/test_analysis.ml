(* Tests for the lib/analysis static verifier: hand-built ill-formed
   programs for every IR code, mutation self-tests over a real
   workload's annotations (each corruption must be caught with its
   expected code), dynamic-replay invariants, diagnostic JSON round
   trips, and the [csteer check] driver's exit codes. *)

open Clusteer_isa
module Analysis = Clusteer_analysis
module Checker = Analysis.Checker
module Profile = Clusteer_workloads.Profile
module Spec2000 = Clusteer_workloads.Spec2000
module Synth = Clusteer_workloads.Synth
module Cdiag = Clusteer_compiler.Diagnostics
module Uarch = Clusteer_uarch
module Json = Clusteer_obs.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let codes diags = List.map (fun d -> d.Diag.code) diags
let has code diags = List.exists (fun d -> d.Diag.code = code) diags

let assert_code what code diags =
  if not (has code diags) then
    Alcotest.failf "%s: expected %s among [%s]" what code
      (String.concat " " (codes diags))

let assert_clean what diags =
  match List.filter (fun d -> d.Diag.severity <> Diag.Info) diags with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "%s: unexpected %s" what (Format.asprintf "%a" Diag.pp d)

(* ---- hand-built programs (via the unchecked constructor) ----------- *)

let u ?(op = Opcode.Int_alu) ?dst ?(srcs = [||]) ?(stream = -1)
    ?(branch_ref = -1) id =
  { Uop.id; opcode = op; dst; srcs; stream; branch_ref }

let blk ?(succs = [||]) id uops = { Block.id; uops = Array.of_list uops; succs }

let prog ?(nregs = 8) ?(streams = 0) ?(branches = 0) ?(entry = 0) blocks =
  Program.of_blocks_unchecked ~nregs_per_class:nregs ~stream_count:streams
    ~branch_model_count:branches
    ~blocks:(Array.of_list blocks)
    ~entry ()

let test_ir_clean () =
  let p =
    prog ~streams:1
      [
        blk 0
          [
            u 0 ~dst:(Reg.int 0);
            u 1 ~op:Opcode.Load ~dst:(Reg.fp 1) ~srcs:[| Reg.int 0 |] ~stream:0;
            u 2 ~op:Opcode.Store ~srcs:[| Reg.int 0; Reg.fp 1 |] ~stream:0;
          ];
      ]
  in
  check_int "well-formed program is clean" 0
    (List.length (Analysis.Ir_check.check p))

let test_ir001_uop_ids () =
  let dup = prog [ blk 0 [ u 0 ~dst:(Reg.int 0); u 0 ~dst:(Reg.int 1) ] ] in
  assert_code "duplicate id" "IR001" (Analysis.Ir_check.check dup);
  let gap = prog [ blk 0 [ u 0 ~dst:(Reg.int 0); u 2 ~dst:(Reg.int 1) ] ] in
  assert_code "id gap (never placed)" "IR001" (Analysis.Ir_check.check gap)

let test_ir002_operand_shape () =
  let case what p = assert_code what "IR002" (Analysis.Ir_check.check p) in
  case "store writes a register"
    (prog ~streams:1
       [ blk 0 [ u 0 ~op:Opcode.Store ~dst:(Reg.int 0) ~stream:0 ] ]);
  case "alu without destination" (prog [ blk 0 [ u 0 ] ]);
  case "three sources"
    (prog
       [
         blk 0
           [
             u 0 ~dst:(Reg.int 0);
             u 1 ~dst:(Reg.int 1)
               ~srcs:[| Reg.int 0; Reg.int 0; Reg.int 0 |];
           ];
       ]);
  case "runtime-only Copy in static text"
    (prog [ blk 0 [ u 0 ~op:Opcode.Copy ~dst:(Reg.int 0) ] ]);
  case "load without stream"
    (prog [ blk 0 [ u 0 ~op:Opcode.Load ~dst:(Reg.int 0) ] ]);
  case "non-memory uop names a stream"
    (prog ~streams:1 [ blk 0 [ u 0 ~dst:(Reg.int 0) ~stream:0 ] ])

let test_ir003_registers () =
  let case what p = assert_code what "IR003" (Analysis.Ir_check.check p) in
  case "register outside budget"
    (prog ~nregs:8 [ blk 0 [ u 0 ~dst:(Reg.int 9) ] ]);
  case "fp result in integer register"
    (prog [ blk 0 [ u 0 ~op:Opcode.Fp_add ~dst:(Reg.int 0) ] ]);
  case "integer result in fp register"
    (prog [ blk 0 [ u 0 ~dst:(Reg.fp 0) ] ])

let test_ir004_cfg () =
  let case what p = assert_code what "IR004" (Analysis.Ir_check.check p) in
  case "entry out of range" (prog ~entry:3 [ blk 0 [ u 0 ~dst:(Reg.int 0) ] ]);
  case "successor out of range"
    (prog [ blk 0 ~succs:[| 5 |] [ u 0 ~dst:(Reg.int 0) ] ]);
  case "block id disagrees with index"
    (prog
       [ { Block.id = 7; uops = [| u 0 ~dst:(Reg.int 0) |]; succs = [||] } ])

let test_ir005_branch_placement () =
  let case what p = assert_code what "IR005" (Analysis.Ir_check.check p) in
  case "branch not the terminator"
    (prog ~branches:1
       [
         blk 0 ~succs:[| 0; 1 |]
           [ u 0 ~op:Opcode.Branch ~branch_ref:0; u 1 ~dst:(Reg.int 0) ];
         blk 1 [ u 2 ~dst:(Reg.int 1) ];
       ]);
  case "two successors without a branch"
    (prog
       [
         blk 0 ~succs:[| 0; 1 |] [ u 0 ~dst:(Reg.int 0) ];
         blk 1 [ u 1 ~dst:(Reg.int 1) ];
       ]);
  case "branch with a single successor"
    (prog ~branches:1
       [
         blk 0 ~succs:[| 1 |] [ u 0 ~op:Opcode.Branch ~branch_ref:0 ];
         blk 1 [ u 1 ~dst:(Reg.int 0) ];
       ])

let test_ir006_external_refs () =
  let case what p = assert_code what "IR006" (Analysis.Ir_check.check p) in
  case "stream beyond declared count"
    (prog ~streams:1
       [ blk 0 [ u 0 ~op:Opcode.Load ~dst:(Reg.int 0) ~stream:3 ] ]);
  case "branch model beyond declared count"
    (prog ~branches:1
       [
         blk 0 ~succs:[| 0; 1 |]
           [ u 0 ~dst:(Reg.int 0); u 1 ~op:Opcode.Branch ~branch_ref:2 ];
         blk 1 [];
       ])

let test_ir_warnings () =
  let unwritten =
    prog [ blk 0 [ u 0 ~dst:(Reg.int 0) ~srcs:[| Reg.int 5 |] ] ]
  in
  let diags = Analysis.Ir_check.check unwritten in
  assert_code "source never written" "IR007" diags;
  check_int "IR007 is a warning" 1 (Diag.count Diag.Warning diags);
  check_int "IR007 is not an error" 0 (Diag.count Diag.Error diags);
  let unreachable =
    prog [ blk 0 [ u 0 ~dst:(Reg.int 0) ]; blk 1 [ u 1 ~dst:(Reg.int 1) ] ]
  in
  assert_code "unreachable block" "IR008" (Analysis.Ir_check.check unreachable)

(* ---- mutation self-test over a real workload ----------------------- *)

let build policy_name =
  let profile = Spec2000.find "164.gzip-1" in
  let w = Synth.build profile in
  let config =
    match Clusteer.Configuration.of_name policy_name with
    | Ok c -> c
    | Error (`Msg m) -> Alcotest.fail m
  in
  let annot, _policy =
    Clusteer.Configuration.prepare config ~program:w.Synth.program
      ~likely:w.Synth.likely ~clusters:2 ()
  in
  (w, annot)

let vc_target = lazy (build "vc2")
let ob_target = lazy (build "ob")

let run ?claimed ?critical ?events (w, annot) =
  let config = Uarch.Config.default ~clusters:2 in
  Checker.run
    (Checker.target ?claimed ?critical ?events ~program:w.Synth.program
       ~likely:w.Synth.likely ~annot ~config ())

let find_index what pred =
  let rec go i n = if i >= n then Alcotest.fail what else if pred i then i else go (i + 1) n in
  fun n -> go 0 n

let test_vc_mutations () =
  let w, annot = Lazy.force vc_target in
  let n = w.Synth.program.Program.uop_count in
  assert_clean "pristine vc2 annotation" (run (w, annot));
  let mutate f =
    let a = Annot.copy annot in
    f a;
    a
  in
  (* 1: a vc id outside the declared range *)
  assert_code "vc out of range" "VC002"
    (run (w, mutate (fun a -> a.Annot.vc_of.(0) <- 7)));
  (* 2: unassigning a leader leaves both a hole and an orphaned mark *)
  let leader_ix = find_index "no leader found" (fun i -> annot.Annot.leader.(i)) n in
  let d = run (w, mutate (fun a -> a.Annot.vc_of.(leader_ix) <- -1)) in
  assert_code "unassigned uop" "VC003" d;
  assert_code "orphaned leader mark" "VC004" d;
  (* 3: dropping the mark at a chain start *)
  assert_code "missing leader at chain start" "VC005"
    (run (w, mutate (fun a -> a.Annot.leader.(leader_ix) <- false)));
  (* 4: a spurious mark in the middle of a chain *)
  let follower_ix =
    find_index "no chain follower found"
      (fun i -> (not annot.Annot.leader.(i)) && annot.Annot.vc_of.(i) <> -1)
      n
  in
  assert_code "spurious mid-chain leader" "VC006"
    (run (w, mutate (fun a -> a.Annot.leader.(follower_ix) <- true)));
  (* 5: ragged arrays are reported alone — later checks need alignment *)
  let ragged =
    { annot with Annot.vc_of = Array.sub annot.Annot.vc_of 0 (n - 1) }
  in
  let d = run (w, ragged) in
  assert_code "ragged annotation" "VC001" d;
  check_bool "only the ragged-annotation codes fire" true
    (List.for_all
       (* the cost model reports the same raggedness as CM006; the topo
          pass contributes its TP006 info regardless *)
       (fun x -> x.Diag.code = "VC001" || x.Diag.code = "CM006")
       (List.filter (fun x -> x.Diag.severity <> Diag.Info) d));
  (* 6: more virtual clusters than static uops is a (strict) failure *)
  let oversized = { annot with Annot.virtual_clusters = n + 1 } in
  let d = run (w, oversized) in
  assert_code "oversized vc count" "VC010" d;
  check_bool "VC010 fails strict" true (Checker.failed ~strict:true d);
  check_bool "VC010 passes lax" false (Checker.failed ~strict:false d);
  (* 7: a truthful partition summary is accepted, a stale one is not *)
  let claimed =
    Cdiag.of_annot ~program:w.Synth.program ~likely:w.Synth.likely ~annot ()
  in
  assert_clean "truthful summary" (run ~claimed (w, annot));
  let tampered =
    { claimed with Cdiag.cross_vc_edges = claimed.Cdiag.cross_vc_edges + 1 }
  in
  assert_code "stale summary" "VC008" (run ~claimed:tampered (w, annot))

let test_static_mutations () =
  let w, annot = Lazy.force ob_target in
  let n = w.Synth.program.Program.uop_count in
  assert_clean "pristine ob annotation" (run (w, annot));
  let placed_ix =
    find_index "no placed uop found" (fun i -> annot.Annot.cluster_of.(i) >= 0) n
  in
  let mutate f =
    let a = Annot.copy annot in
    f a;
    a
  in
  (* 8: a physical cluster id beyond the machine *)
  assert_code "cluster out of range" "PL001"
    (run (w, mutate (fun a -> a.Annot.cluster_of.(placed_ix) <- 99)));
  (* 9: a hole in a static placement *)
  assert_code "unplaced uop" "PL002"
    (run (w, mutate (fun a -> a.Annot.cluster_of.(placed_ix) <- -1)))

let test_crit_mutations () =
  let w, _ = Lazy.force vc_target in
  let program = w.Synth.program and likely = w.Synth.likely in
  let critical =
    Clusteer_compiler.Crit_hints.compute ~program ~likely ()
  in
  let annot = Annot.none ~uop_count:program.Program.uop_count in
  assert_clean "truthful criticality hints" (run ~critical (w, annot));
  (* 10: a flipped criticality bit disagrees with recomputed slack *)
  let flipped = Array.copy critical in
  flipped.(0) <- not flipped.(0);
  assert_code "stale criticality hint" "PL005" (run ~critical:flipped (w, annot))

let test_dyn_invariants () =
  let annot =
    {
      Annot.scheme = "vc";
      virtual_clusters = 2;
      vc_of = [| 0; 0; 1 |];
      leader = [| true; false; true |];
      cluster_of = [| -1; -1; -1 |];
    }
  in
  let replay events = Analysis.Dyn_check.check ~annot ~clusters:2 events in
  let ev uop cluster = { Analysis.Dyn_check.uop; cluster } in
  (* leaders may remap their VC; followers must follow the table *)
  check_int "faithful replay" 0 (List.length (replay [ ev 0 1; ev 1 1; ev 2 0 ]));
  (* 11: a follower deviating from the leader's choice *)
  assert_code "rogue follower" "DYN002" (replay [ ev 0 1; ev 1 0 ]);
  (* 12: an event naming a uop the program does not have *)
  assert_code "event uop out of range" "DYN001" (replay [ ev 5 0 ])

(* ---- diagnostics plumbing ------------------------------------------ *)

let test_diag_json_roundtrip () =
  let samples =
    [
      Diag.errorf ~uop:17 ~block:3 ~region:2 ~code:"VC005"
        "missing leader mark";
      Diag.warnf ~code:"IR007" "source register R5 is never written";
      Diag.infof ~region:4 ~code:"VC009" "vc 1 splits into 3 components";
    ]
  in
  List.iter
    (fun d ->
      match Diag.of_json (Diag.to_json d) with
      | Ok d' -> check_bool "round trip preserves the finding" true (d = d')
      | Error e -> Alcotest.failf "round trip failed: %s" e)
    samples;
  check_bool "unknown severity rejected" true
    (match
       Diag.of_json
         (Json.Obj
            [
              ("severity", Json.Str "fatal");
              ("code", Json.Str "X001");
              ("message", Json.Str "m");
            ])
     with
    | Error _ -> true
    | Ok _ -> false)

let test_report_json () =
  let diags = [ Diag.errorf ~code:"IR001" "x"; Diag.infof ~code:"VC007" "y" ] in
  let doc = Checker.report_json ~label:"t" diags in
  let count name = Option.bind (Json.member name doc) Json.to_int in
  check_bool "errors counted" true (count "errors" = Some 1);
  check_bool "infos counted" true (count "infos" = Some 1);
  check_bool "warnings counted" true (count "warnings" = Some 0);
  check_bool "diagnostics listed" true
    (match Json.member "diagnostics" doc with
    | Some (Json.List [ _; _ ]) -> true
    | _ -> false)

let test_pass_selection () =
  (match Checker.select [] with
  | Ok ps -> check_int "empty selects all" 8 (List.length ps)
  | Error e -> Alcotest.fail e);
  (match Checker.select [ "ir"; "dyn" ] with
  | Ok ps -> check_int "subset resolves" 2 (List.length ps)
  | Error e -> Alcotest.fail e);
  check_bool "unknown pass rejected" true
    (match Checker.select [ "bogus" ] with Error _ -> true | Ok _ -> false)

(* ---- every built-in workload is clean (satellite regression) ------- *)

let test_all_workloads_clean () =
  List.iter
    (fun (profile : Profile.t) ->
      let w = Synth.build profile in
      List.iter
        (fun name ->
          let config =
            match Clusteer.Configuration.of_name name with
            | Ok c -> c
            | Error (`Msg m) -> Alcotest.fail m
          in
          let annot, _ =
            Clusteer.Configuration.prepare config ~program:w.Synth.program
              ~likely:w.Synth.likely ~clusters:2 ()
          in
          let claimed =
            if annot.Annot.virtual_clusters > 0 then
              Some
                (Cdiag.of_annot ~program:w.Synth.program ~likely:w.Synth.likely
                   ~annot ())
            else None
          in
          let diags = run ?claimed (w, annot) in
          if Checker.failed ~strict:true diags then
            Alcotest.failf "%s/%s not clean: [%s]" profile.Profile.name name
              (String.concat " " (codes diags)))
        [ "ob"; "rhop"; "vc2" ])
    Spec2000.all

(* ---- the csteer check driver, as a subprocess ---------------------- *)

let exe =
  let candidates =
    [ "../bin/csteer.exe"; "_build/default/bin/csteer.exe"; "bin/csteer.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/csteer.exe"

let run_capture args =
  let tmp = Filename.temp_file "csteer_check" ".txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>/dev/null" (Filename.quote exe) args
      (Filename.quote tmp)
  in
  let code = Sys.command cmd in
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let out = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  (code, out)

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let test_cli_clean () =
  let code, out = run_capture "check -w gzip-1 -p ob,rhop,vc2" in
  check_int "clean check exits 0" 0 code;
  check_bool "reports ok" true (contains out "checked 3 target(s): ok")

let test_cli_strict_oversized () =
  let code, out = run_capture "check -w mcf -p vc200 --strict" in
  check_int "strict failure exits 1" 1 code;
  check_bool "names VC010" true (contains out "VC010");
  let code, out = run_capture "check -w mcf -p vc200" in
  check_int "lax run exits 0" 0 code;
  check_bool "warning still reported" true (contains out "VC010")

let test_cli_usage_errors () =
  let code, _ = run_capture "check -w gzip-1 --passes bogus" in
  check_int "unknown pass exits 2" 2 code;
  let code, _ = run_capture "check" in
  check_int "missing workloads exits 2" 2 code

let test_cli_corrupt_annot () =
  let _, annot = Lazy.force ob_target in
  let bad = Annot.copy annot in
  let ix =
    find_index "no placed uop found"
      (fun i -> annot.Annot.cluster_of.(i) >= 0)
      (Array.length annot.Annot.cluster_of)
  in
  bad.Annot.cluster_of.(ix) <- 99;
  let path = Filename.temp_file "csteer_annot" ".txt" in
  Annot_io.save ~path bad;
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let code, out =
    run_capture
      (Printf.sprintf "check -w gzip-1 -p ob --annot %s" (Filename.quote path))
  in
  check_int "corrupt annotation exits 1" 1 code;
  check_bool "names PL001" true (contains out "PL001")

let test_cli_json () =
  let code, out = run_capture "check -w gzip-1 -p vc2 --json" in
  check_int "exit 0" 0 code;
  match Json.of_string (String.trim out) with
  | Error e -> Alcotest.failf "--json output unparseable: %s" e
  | Ok doc ->
      check_bool "not failed" true
        (Json.member "failed" doc = Some (Json.Bool false));
      check_bool "one target report" true
        (match Json.member "targets" doc with
        | Some (Json.List [ _ ]) -> true
        | _ -> false)

let test_cli_dynamic () =
  let code, out =
    run_capture "check -w gzip-1 -p vc2 --dynamic --dynamic-uops 2000"
  in
  check_int "dynamic replay exits 0" 0 code;
  check_bool "reports ok" true (contains out ": ok")

let () =
  Alcotest.run "clusteer_analysis"
    [
      ( "ir",
        [
          Alcotest.test_case "clean program" `Quick test_ir_clean;
          Alcotest.test_case "IR001 uop ids" `Quick test_ir001_uop_ids;
          Alcotest.test_case "IR002 operand shape" `Quick
            test_ir002_operand_shape;
          Alcotest.test_case "IR003 registers" `Quick test_ir003_registers;
          Alcotest.test_case "IR004 cfg" `Quick test_ir004_cfg;
          Alcotest.test_case "IR005 branch placement" `Quick
            test_ir005_branch_placement;
          Alcotest.test_case "IR006 external refs" `Quick
            test_ir006_external_refs;
          Alcotest.test_case "IR007/IR008 warnings" `Quick test_ir_warnings;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "vc invariants" `Quick test_vc_mutations;
          Alcotest.test_case "static placement" `Quick test_static_mutations;
          Alcotest.test_case "criticality hints" `Quick test_crit_mutations;
          Alcotest.test_case "dynamic replay" `Quick test_dyn_invariants;
        ] );
      ( "diag",
        [
          Alcotest.test_case "json round trip" `Quick test_diag_json_roundtrip;
          Alcotest.test_case "report json" `Quick test_report_json;
          Alcotest.test_case "pass selection" `Quick test_pass_selection;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "all built-ins clean" `Slow
            test_all_workloads_clean;
        ] );
      ( "cli",
        [
          Alcotest.test_case "clean exit" `Quick test_cli_clean;
          Alcotest.test_case "strict oversized vc" `Quick
            test_cli_strict_oversized;
          Alcotest.test_case "usage errors" `Quick test_cli_usage_errors;
          Alcotest.test_case "corrupt annotation file" `Quick
            test_cli_corrupt_annot;
          Alcotest.test_case "json report" `Quick test_cli_json;
          Alcotest.test_case "dynamic replay" `Slow test_cli_dynamic;
        ] );
    ]
