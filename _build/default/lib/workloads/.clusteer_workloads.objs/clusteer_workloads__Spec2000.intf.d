lib/workloads/spec2000.mli: Profile
