module Compiler = Clusteer_compiler
module Steer = Clusteer_steer
module Uarch = Clusteer_uarch

let compile ~program ~likely ~virtual_clusters ?(region_uops = 512) () =
  Compiler.Vc_partition.compile ~program ~likely ~virtual_clusters ~region_uops
    ()

let policy ~annot ~clusters = Steer.Vc_map.make ~annot ~clusters ()

let simulate ~config ~virtual_clusters ~program ~likely ~source ~uops
    ?(region_uops = 512) () =
  let annot = compile ~program ~likely ~virtual_clusters ~region_uops () in
  let policy = policy ~annot ~clusters:config.Uarch.Config.clusters in
  let engine = Uarch.Engine.create ~config ~annot ~policy () in
  Uarch.Engine.run engine ~source ~uops
