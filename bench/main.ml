(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the design-choice ablations from DESIGN.md, then
   times the core algorithms with Bechamel (one Test.make per table /
   figure driver).

   Environment knobs:
     CLUSTEER_BENCH_UOPS   micro-ops per simulation point (default 20000)
     CLUSTEER_BENCH_FAST   set to 1 to sweep a 10-benchmark subset
     CLUSTEER_BENCH_STUDY  "throughput" runs just the throughput study;
                           "tune" runs one tiny auto-tuner cycle;
                           "topo" runs the interconnect-topology study
                           "predict" runs the cost-model accuracy study
     CLUSTEER_BENCH_REQUIRE_SPEEDUP
                           set to 1 to enforce the suite-speedup floor
                           (>=1.5x at 2 domains, >=3x at 4); checks the
                           host cannot run in parallel are SKIPped,
                           bit-identity mismatches always fail
     CLUSTEER_BENCH_LEDGER record the throughput study in the run
                           ledger at this directory
     CLUSTEER_BENCH_JSON   where to write the BENCH JSON (bench.json) *)

open Bechamel
module Config = Clusteer_uarch.Config
module Topology = Clusteer_topo.Topology
module Stats = Clusteer_uarch.Stats
module Experiments = Clusteer_harness.Experiments
module Runner = Clusteer_harness.Runner
module Metrics = Clusteer_harness.Metrics
module Spec2000 = Clusteer_workloads.Spec2000
module Profile = Clusteer_workloads.Profile
module Pinpoints = Clusteer_workloads.Pinpoints
module Synth = Clusteer_workloads.Synth
module Obs = Clusteer_obs

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let uops = env_int "CLUSTEER_BENCH_UOPS" 20_000

let profiles =
  if Sys.getenv_opt "CLUSTEER_BENCH_FAST" = Some "1" then
    List.map Spec2000.find
      [
        "gzip-1"; "gcc-1"; "crafty"; "mcf"; "twolf"; "galgel"; "swim";
        "equake"; "art-1"; "sixtrack";
      ]
  else Spec2000.all

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let progress name = Printf.eprintf "  running %s...\r%!" name

(* ---- paper tables ---------------------------------------------------- *)

let run_tables () =
  heading "Table 1: steering-logic complexity";
  Experiments.print_table1 ();
  heading "Table 2: architectural parameters";
  Experiments.print_table2 ~clusters:2;
  heading "Table 3: evaluated configurations";
  Experiments.print_table3 ();
  heading "Section 2.1 worked example";
  Experiments.print_section21 (Experiments.section21_example ())

(* ---- figures ---------------------------------------------------------- *)

let run_figures () =
  heading
    (Printf.sprintf
       "Figure 5: 2-cluster slowdown vs OP (%d points x %d uops)"
       (List.length profiles) uops);
  let run2 = Experiments.run_2cluster ~uops ~profiles ~progress () in
  Printf.eprintf "%40s\r%!" "";
  let fig5 = Experiments.figure5_of run2 in
  Experiments.print_slowdown_figure
    ~title:"(paper averages: one-cluster 12.19, OB 6.50, RHOP 5.40, VC 2.62)"
    fig5;
  heading "Figure 6: copy / balance trade-off (VC vs OB, RHOP, OP)";
  print_endline
    "(paper: a.1/b.1 VC reduces copies and stalls vs OB; a.2/b.2 VC vs RHOP\n\
    \ wins overall; a.3/b.3 OP generates fewer copies than VC)";
  let fig6 = Experiments.figure6_of run2 in
  Experiments.print_scatter_summary fig6;
  Experiments.print_scatter_plots fig6;
  heading
    (Printf.sprintf "Figure 7: 4-cluster slowdown vs OP (%d points)"
       (List.length profiles));
  let run4 = Experiments.run_4cluster ~uops ~profiles ~progress () in
  Printf.eprintf "%40s\r%!" "";
  let fig7 = Experiments.figure7_of run4 in
  Experiments.print_slowdown_figure
    ~title:
      "(paper averages: OB 12.45, RHOP 12.69, VC(4->4) 12.96, VC(2->4) 3.64)"
    fig7;
  Printf.printf "VC(4->4) copies over VC(2->4): %+.1f%% (paper: +28%%)\n"
    (Experiments.copy_inflation run4)

(* ---- ablations --------------------------------------------------------- *)

(* Design-choice ablation 1: the remap hysteresis threshold of the
   hardware mapping table (0 = the paper's always-remap semantics). *)
let ablation_profiles () =
  List.map Spec2000.find [ "gzip-1"; "galgel"; "swim"; "gcc-1" ]

let run_vc_threshold_ablation () =
  heading "Ablation: VC remap hysteresis threshold (extension; 0 = paper)";
  let bench_uops = min uops 10_000 in
  Printf.printf "%-10s %12s %14s %16s\n" "threshold" "avg cycles" "avg copies"
    "avg alloc stalls";
  List.iter
    (fun threshold ->
      let totals = ref (0, 0, 0) in
      List.iter
        (fun profile ->
          let point = List.hd (Pinpoints.points profile) in
          let workload = Synth.build point.Pinpoints.profile in
          let annot =
            Clusteer.Hybrid.compile ~program:workload.Synth.program
              ~likely:workload.Synth.likely ~virtual_clusters:2 ()
          in
          let policy =
            Clusteer_steer.Vc_map.make ~remap_threshold:threshold ~annot
              ~clusters:2 ()
          in
          let prewarm =
            Array.to_list
              (Array.map Clusteer_trace.Mem_model.extent workload.Synth.streams)
          in
          let engine =
            Clusteer_uarch.Engine.create ~config:Config.default_2c ~annot
              ~policy ~prewarm ()
          in
          let gen = Synth.trace workload ~seed:1 in
          let stats =
            Clusteer_uarch.Engine.run ~warmup:5000 engine
              ~source:(fun () -> Clusteer_trace.Tracegen.next gen)
              ~uops:bench_uops
          in
          let c, k, s = !totals in
          totals :=
            ( c + stats.Stats.cycles,
              k + stats.Stats.copies_generated,
              s + Stats.allocation_stalls stats ))
        (ablation_profiles ());
      let n = List.length (ablation_profiles ()) in
      let c, k, s = !totals in
      Printf.printf "%-10d %12d %14d %16d\n" threshold (c / n) (k / n) (s / n))
    [ 0; 4; 8; 16; 32 ]

(* Design-choice ablation 2: sequential vs parallel (rename-style)
   steering at full-trace scale (§2.1 beyond the worked example). *)
let run_seq_par_ablation () =
  heading "Ablation: sequential vs parallel OP steering (2.1 at trace scale)";
  let bench_uops = min uops 10_000 in
  Printf.printf "%-12s %14s %14s %12s\n" "benchmark" "seq copies" "par copies"
    "par slowdown";
  List.iter
    (fun profile ->
      let point = List.hd (Pinpoints.points profile) in
      let runs =
        (Runner.run_point ~machine:Config.default_2c
           ~configs:
             [ Clusteer.Configuration.Op; Clusteer.Configuration.Op_parallel ]
           ~uops:bench_uops point)
          .Runner.runs
      in
      let op = List.assoc "op" runs and par = List.assoc "op-parallel" runs in
      Printf.printf "%-12s %14d %14d %11.2f%%\n" profile.Profile.name
        op.Stats.copies_generated par.Stats.copies_generated
        (Metrics.slowdown_pct ~baseline:op par))
    (ablation_profiles ())

(* Design-choice ablation 3: number of virtual clusters on the
   2-cluster machine (the paper fixes 2 "because more does not help"). *)
let run_vc_count_ablation () =
  heading "Ablation: virtual-cluster count on the 2-cluster machine";
  let bench_uops = min uops 10_000 in
  Printf.printf "%-6s %12s %14s\n" "VCs" "avg cycles" "avg copies";
  List.iter
    (fun nvc ->
      let totals = ref (0, 0) in
      List.iter
        (fun profile ->
          let point = List.hd (Pinpoints.points profile) in
          let runs =
            (Runner.run_point ~machine:Config.default_2c
               ~configs:[ Clusteer.Configuration.Vc { virtual_clusters = nvc } ]
               ~uops:bench_uops point)
              .Runner.runs
          in
          let _, stats = List.hd runs in
          let c, k = !totals in
          totals := (c + stats.Stats.cycles, k + stats.Stats.copies_generated))
        (ablation_profiles ());
      let n = List.length (ablation_profiles ()) in
      let c, k = !totals in
      Printf.printf "%-6d %12d %14d\n" nvc (c / n) (k / n))
    [ 1; 2; 3; 4 ]

(* Design-choice ablation 4: the compiler's region scope — §3.2 claims
   software steering wins by inspecting "a bigger window of
   instructions" than the hardware can; shrinking the superblock
   budget should cost the software schemes performance. *)
let run_region_scope_ablation () =
  heading "Ablation: compiler region scope (micro-ops per superblock)";
  let bench_uops = min uops 10_000 in
  Printf.printf "%-12s %14s %14s %14s
" "scheme" "32-uop regions"
    "128-uop regions" "512-uop regions";
  let avg_cycles config region_uops =
    let total = ref 0 in
    List.iter
      (fun profile ->
        let point = List.hd (Pinpoints.points profile) in
        let workload = Synth.build point.Pinpoints.profile in
        let annot, policy =
          Clusteer.Configuration.prepare config ~program:workload.Synth.program
            ~likely:workload.Synth.likely ~clusters:2 ~region_uops ()
        in
        let prewarm =
          Array.to_list
            (Array.map Clusteer_trace.Mem_model.extent workload.Synth.streams)
        in
        let engine =
          Clusteer_uarch.Engine.create ~config:Config.default_2c ~annot
            ~policy ~prewarm ()
        in
        let gen = Synth.trace workload ~seed:1 in
        let stats =
          Clusteer_uarch.Engine.run ~warmup:5000 engine
            ~source:(fun () -> Clusteer_trace.Tracegen.next gen)
            ~uops:bench_uops
        in
        total := !total + stats.Stats.cycles)
      (ablation_profiles ());
    !total / List.length (ablation_profiles ())
  in
  List.iter
    (fun config ->
      Printf.printf "%-12s %14d %14d %14d
"
        (Clusteer.Configuration.name config)
        (avg_cycles config 32) (avg_cycles config 128)
        (avg_cycles config 512))
    [
      Clusteer.Configuration.Ob;
      Clusteer.Configuration.Rhop;
      Clusteer.Configuration.Vc { virtual_clusters = 2 };
    ]

(* Extension study 0: quantify §2.1 — charge the hardware-only schemes
   the extra decode stages their serialized dependence-check + vote
   logic would cost, and watch the hybrid overtake OP. *)
let run_steer_depth_study () =
  heading "Extension: cost of serialized steering logic (2.1)";
  print_endline
    "(VC slowdown vs OP when OP pays extra pipe stages for its serialized\n\
     dependence-check + vote logic; negative = the hybrid is faster)";
  let bench_uops = min uops 10_000 in
  Printf.printf "%-14s %14s %14s %14s\n" "benchmark" "+0 stages" "+1 stage"
    "+2 stages";
  List.iter
    (fun profile ->
      let point = List.hd (Pinpoints.points profile) in
      let gap stages =
        let machine =
          { Config.default_2c with Config.steer_serial_stages = stages }
        in
        let runs =
          (Runner.run_point ~machine
             ~configs:
               [
                 Clusteer.Configuration.Op;
                 Clusteer.Configuration.Vc { virtual_clusters = 2 };
               ]
             ~uops:bench_uops point)
            .Runner.runs
        in
        Metrics.slowdown_pct
          ~baseline:(List.assoc "op" runs)
          (List.assoc "vc2" runs)
      in
      Printf.printf "%-14s %13.2f%% %13.2f%% %13.2f%%\n" profile.Profile.name
        (gap 0) (gap 1) (gap 2))
    (ablation_profiles ())

(* Extension study 1: baselines beyond Table 3 — MOD_3 (Baniasadi &
   Moshovos) and plain dependence-based steering (Canal et al.), the
   ancestors the paper's §3.1 positions OP against. *)
let run_extended_baselines () =
  heading "Extension: hardware baselines beyond Table 3 (slowdown vs OP)";
  let bench_uops = min uops 10_000 in
  Printf.printf "%-12s %8s %8s %8s %8s %8s\n" "benchmark" "mod3" "dep"
    "crit" "one-cl" "vc2";
  List.iter
    (fun profile ->
      let point = List.hd (Pinpoints.points profile) in
      let runs =
        (Runner.run_point ~machine:Config.default_2c
           ~configs:
             [
               Clusteer.Configuration.Op;
               Clusteer.Configuration.Mod_n { n = 3 };
               Clusteer.Configuration.Dep;
               Clusteer.Configuration.Crit;
               Clusteer.Configuration.One_cluster;
               Clusteer.Configuration.Vc { virtual_clusters = 2 };
             ]
           ~uops:bench_uops point)
          .Runner.runs
      in
      let op = List.assoc "op" runs in
      let slow name =
        Metrics.slowdown_pct ~baseline:op (List.assoc name runs)
      in
      Printf.printf "%-12s %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n"
        profile.Profile.name (slow "mod3") (slow "dep") (slow "crit")
        (slow "one-cluster") (slow "vc2"))
    (ablation_profiles ())

(* Extension study 2: interconnect topology at 4 clusters — the paper
   assumes dedicated point-to-point links; this quantifies that choice
   against a shared bus and a ring. *)
let run_topology_study () =
  heading "Extension: interconnect topology, 4-cluster machine (cycles)";
  let bench_uops = min uops 10_000 in
  Printf.printf "%-12s %16s %12s %12s\n" "benchmark" "point-to-point" "bus"
    "ring";
  List.iter
    (fun profile ->
      let point = List.hd (Pinpoints.points profile) in
      let cycles topology =
        let machine = { Config.default_4c with Config.topology } in
        let runs =
          (Runner.run_point ~machine
             ~configs:[ Clusteer.Configuration.Vc { virtual_clusters = 2 } ]
             ~uops:bench_uops point)
            .Runner.runs
        in
        (snd (List.hd runs)).Stats.cycles
      in
      Printf.printf "%-12s %16d %12d %12d\n" profile.Profile.name
        (cycles (Topology.p2p ~clusters:4 ()))
        (cycles (Topology.bus ~clusters:4 ()))
        (cycles (Topology.ring ~clusters:4 ())))
    (ablation_profiles ())

(* Extension study 3: the VLIW substrate (§3.3) — software-only
   steering on its home ground. On the statically-scheduled machine,
   RHOP and the VC partition are competitive with unified
   assign-and-schedule; the big gaps of Figure 5 only exist on the
   out-of-order machine, which is the paper's §3.3 argument. *)
let run_vliw_study () =
  heading "Extension: VLIW substrate (3.3) — static-schedule gap vs UAS";
  let machine = Clusteer_vliw.Machine.default ~clusters:2 in
  Printf.printf "%-12s %10s %18s %18s\n" "benchmark" "UAS IPC" "RHOP gap"
    "VC-partition gap";
  List.iter
    (fun profile ->
      let w = Synth.build profile in
      let program = w.Synth.program and likely = w.Synth.likely in
      let run mode = Clusteer_vliw.Eval.run machine ~program ~likely mode in
      let uas = run Clusteer_vliw.Eval.Unified in
      let rhop =
        run
          (Clusteer_vliw.Eval.Fixed
             (fun g -> Clusteer_compiler.Rhop.assign_region g ~clusters:2))
      in
      let vc =
        run
          (Clusteer_vliw.Eval.Fixed
             (fun g ->
               Clusteer_compiler.Vc_partition.assign_region g
                 ~virtual_clusters:2 ()))
      in
      let gap (s : Clusteer_vliw.Eval.summary) =
        (float_of_int s.Clusteer_vliw.Eval.cycles
         /. float_of_int uas.Clusteer_vliw.Eval.cycles
        -. 1.0)
        *. 100.0
      in
      Printf.printf "%-12s %10.2f %17.2f%% %17.2f%%\n" profile.Profile.name
        uas.Clusteer_vliw.Eval.static_ipc (gap rhop) (gap vc))
    (ablation_profiles ())

(* Extension study 4: the energy argument of §1 — a clustered backend
   with the hybrid steering vs an equally wide monolithic backend.
   Smaller per-cluster structures cost less per access; copies add
   events. *)
let run_energy_study () =
  heading "Extension: energy per committed micro-op (arbitrary units)";
  let bench_uops = min uops 10_000 in
  let monolithic =
    {
      Config.default_2c with
      Config.clusters = 1;
      topology = Topology.p2p ~clusters:1 ();
      int_issue_width = 4;
      fp_issue_width = 4;
      int_iq_size = 96;
      fp_iq_size = 96;
    }
  in
  Printf.printf "%-12s %12s %12s %14s %16s %12s\n" "benchmark" "mono e/uop"
    "vc2 e/uop" "vc2 copy e%" "vc2 cycle delta" "vc2 dT";
  List.iter
    (fun profile ->
      let point = List.hd (Pinpoints.points profile) in
      let run machine config =
        let runs =
          (Runner.run_point ~machine ~configs:[ config ] ~uops:bench_uops
             point)
            .Runner.runs
        in
        snd (List.hd runs)
      in
      let mono = run monolithic Clusteer.Configuration.One_cluster in
      let vc =
        run Config.default_2c
          (Clusteer.Configuration.Vc { virtual_clusters = 2 })
      in
      let e_mono = Clusteer_uarch.Energy.estimate ~clusters:1 mono in
      let e_vc = Clusteer_uarch.Energy.estimate ~clusters:2 vc in
      let t_vc = Clusteer_uarch.Thermal.estimate ~clusters:2 vc in
      Printf.printf "%-12s %12.2f %12.2f %13.1f%% %15.1f%% %11.2f\n"
        profile.Profile.name e_mono.Clusteer_uarch.Energy.per_uop
        e_vc.Clusteer_uarch.Energy.per_uop
        (100.
        *. e_vc.Clusteer_uarch.Energy.copies
        /. Float.max 1e-9 e_vc.Clusteer_uarch.Energy.dynamic)
        ((float_of_int vc.Stats.cycles /. float_of_int mono.Stats.cycles -. 1.0)
        *. 100.)
        t_vc.Clusteer_uarch.Thermal.spread)
    (ablation_profiles ())

(* Extension study 5: link latency sensitivity — Table 2's 1-cycle
   point-to-point links are optimistic for deeper technologies; the
   hybrid's advantage should be robust as copies get slower. *)
let run_link_latency_study () =
  heading "Extension: inter-cluster link latency sensitivity (VC vs OP)";
  let bench_uops = min uops 10_000 in
  Printf.printf "%-12s %12s %12s %12s
" "benchmark" "1 cycle" "2 cycles"
    "4 cycles";
  List.iter
    (fun profile ->
      let point = List.hd (Pinpoints.points profile) in
      let gap latency =
        let machine =
          {
            Config.default_2c with
            Config.topology = Topology.p2p ~link_latency:latency ~clusters:2 ();
          }
        in
        let runs =
          (Runner.run_point ~machine
             ~configs:
               [
                 Clusteer.Configuration.Op;
                 Clusteer.Configuration.Vc { virtual_clusters = 2 };
               ]
             ~uops:bench_uops point)
            .Runner.runs
        in
        Metrics.slowdown_pct
          ~baseline:(List.assoc "op" runs)
          (List.assoc "vc2" runs)
      in
      Printf.printf "%-12s %11.2f%% %11.2f%% %11.2f%%
" profile.Profile.name
        (gap 1) (gap 2) (gap 4))
    (ablation_profiles ())

(* Extension study 6: cluster-count scaling beyond the paper (2 and 4
   evaluated there; 8 extrapolated) — does VC(2->N) keep tracking OP? *)
let run_scaling_study () =
  heading "Extension: cluster-count scaling, VC(2->N) slowdown vs OP";
  let bench_uops = min uops 10_000 in
  Printf.printf "%-12s %12s %12s %12s
" "benchmark" "2 clusters"
    "4 clusters" "8 clusters";
  List.iter
    (fun profile ->
      let point = List.hd (Pinpoints.points profile) in
      let gap clusters =
        let machine = Config.default ~clusters in
        let runs =
          (Runner.run_point ~machine
             ~configs:
               [
                 Clusteer.Configuration.Op;
                 Clusteer.Configuration.Vc { virtual_clusters = 2 };
               ]
             ~uops:bench_uops point)
            .Runner.runs
        in
        Metrics.slowdown_pct
          ~baseline:(List.assoc "op" runs)
          (List.assoc "vc2" runs)
      in
      Printf.printf "%-12s %11.2f%% %11.2f%% %11.2f%%
" profile.Profile.name
        (gap 2) (gap 4) (gap 8))
    (ablation_profiles ())

(* Extension study 7: an idealised next-line prefetcher — how much of
   the memory-bound benchmarks' stall time is prefetchable, and does
   the steering ranking survive a better memory system? *)
let run_prefetch_study () =
  heading "Extension: idealised next-line prefetch (cycles, VC on 2 clusters)";
  let bench_uops = min uops 10_000 in
  Printf.printf "%-12s %14s %14s %10s
" "benchmark" "no prefetch"
    "prefetch" "saved";
  List.iter
    (fun name ->
      let profile = Spec2000.find name in
      let point = List.hd (Pinpoints.points profile) in
      let cycles prefetch_next_line =
        let machine = { Config.default_2c with Config.prefetch_next_line } in
        let runs =
          (Runner.run_point ~machine
             ~configs:[ Clusteer.Configuration.Vc { virtual_clusters = 2 } ]
             ~uops:bench_uops point)
            .Runner.runs
        in
        (snd (List.hd runs)).Stats.cycles
      in
      let off = cycles false and on = cycles true in
      Printf.printf "%-12s %14d %14d %9.1f%%
" profile.Profile.name off on
        (100. *. float_of_int (off - on) /. float_of_int off))
    [ "mcf"; "swim"; "equake"; "art-1" ]

(* Ground truth: the hand-written kernels under the main schemes. *)
let run_kernel_table () =
  heading "Micro-kernels: analytically understood steering ground truth";
  let bench_uops = min uops 8_000 in
  Printf.printf "%-12s %9s %10s %10s %12s
" "kernel" "op IPC" "one-cl"
    "vc2" "vc2 copies";
  List.iter
    (fun (name, kernel) ->
      let runs =
        Runner.run_workload ~machine:Config.default_2c
          ~configs:
            [
              Clusteer.Configuration.Op;
              Clusteer.Configuration.One_cluster;
              Clusteer.Configuration.Vc { virtual_clusters = 2 };
            ]
          ~uops:bench_uops kernel
      in
      let stats n = List.assoc n runs in
      let op = stats "op" in
      let slow n =
        (float_of_int (stats n).Stats.cycles /. float_of_int op.Stats.cycles
        -. 1.0)
        *. 100.0
      in
      Printf.printf "%-12s %9.2f %9.1f%% %9.1f%% %12d
" name (Stats.ipc op)
        (slow "one-cluster") (slow "vc2")
        (stats "vc2").Stats.copies_generated)
    Clusteer_workloads.Kernels.all

(* ---- suite throughput + steering allocation study ----------------------- *)

(* Machine-readable results for the throughput study: one BENCH JSON
   object, printed to stdout (greppable by `make bench-smoke`) and
   written to CLUSTEER_BENCH_JSON (default "bench.json"). *)
let write_bench_json fields =
  let json = Obs.Json.Obj fields in
  let path =
    Option.value ~default:"bench.json" (Sys.getenv_opt "CLUSTEER_BENCH_JSON")
  in
  (try
     let oc = open_out path in
     Obs.Json.output oc json;
     output_char oc '\n';
     close_out oc;
     Printf.printf "bench json written to %s\n" path
   with Sys_error msg -> Printf.eprintf "bench json not written: %s\n" msg);
  Printf.printf "BENCH %s\n" (Obs.Json.to_string json)

(* An allocation-free machine view (constant locations, no hashtable,
   no per-call closures) so [Gc.minor_words] deltas measure the policy
   itself, not the probe. *)
let alloc_probe_view ~clusters ~annot =
  let inflight = Array.make clusters 0 in
  let free = Array.make clusters 48 in
  let loc = Clusteer_util.Bitset.singleton 0 in
  {
    Clusteer_uarch.Policy.clusters;
    cycle = (fun () -> 0);
    inflight = (fun c -> inflight.(c));
    queue_free = (fun c _ -> free.(c));
    src_locations =
      (fun d ->
        Array.map
          (fun _ -> loc)
          d.Clusteer_trace.Dynuop.suop.Clusteer_isa.Uop.srcs);
    src_locations_into =
      (fun d buf ->
        let n =
          Array.length d.Clusteer_trace.Dynuop.suop.Clusteer_isa.Uop.srcs
        in
        for i = 0 to n - 1 do
          buf.(i) <- loc
        done;
        n);
    reg_location = (fun _ -> loc);
    annot;
  }

let minor_words_per_decide policy view duop =
  let rounds = 20_000 in
  (* Warm the lazily-sized scratch arrays out of the measurement. *)
  for _ = 1 to 256 do
    ignore (policy.Clusteer_uarch.Policy.decide view duop)
  done;
  let before = Gc.minor_words () in
  for _ = 1 to rounds do
    ignore (policy.Clusteer_uarch.Policy.decide view duop)
  done;
  (Gc.minor_words () -. before) /. float_of_int rounds

(* Enforced scaling floor for `make bench-smoke`
   (CLUSTEER_BENCH_REQUIRE_SPEEDUP=1): the shared-nothing harness must
   reach these suite speedups or the study exits 1 with a one-line
   diagnostic. The escape hatch for small CI machines is automatic: a
   domain count the host cannot actually run in parallel
   ([Domain.recommended_domain_count () < domains]) downgrades that
   check to an explicit SKIP line. Bit-identity across domain counts
   has no hatch — a mismatch always fails. *)
let required_speedup domains =
  if domains >= 4 then 3.0 else if domains >= 2 then 1.5 else 0.0

let run_throughput_study () =
  heading "Throughput study: parallel harness + zero-allocation steering";
  let started = Unix.gettimeofday () in
  let gc_start = Obs.Ledger.gc_now () in
  (* 1. Suite throughput vs domain count. Each measurement replays the
     identical work (the harness is deterministic), so uops/sec is
     directly comparable across domain counts. On a single-core host
     the speedup column honestly reports ~1.0. *)
  let suite =
    List.map
      (fun n -> { (Spec2000.find n) with Profile.phases = 2 })
      [ "gzip-1"; "galgel"; "swim"; "gcc-1" ]
  in
  let configs =
    [
      Clusteer.Configuration.Op;
      Clusteer.Configuration.Vc { virtual_clusters = 2 };
    ]
  in
  let per_point_uops = min uops 2_000 in
  let npoints =
    List.fold_left
      (fun acc p -> acc + List.length (Pinpoints.points p))
      0 suite
  in
  let total_uops = npoints * List.length configs * per_point_uops in
  let measure ?strategy domains =
    let gc0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let results =
      Runner.run_suite ~domains ?strategy ~machine:Config.default_2c ~configs
        ~uops:per_point_uops suite
    in
    let dt = Unix.gettimeofday () -. t0 in
    let gc1 = Gc.quick_stat () in
    ( results,
      dt,
      gc1.Gc.minor_words -. gc0.Gc.minor_words,
      gc1.Gc.minor_collections - gc0.Gc.minor_collections )
  in
  let baseline, t1, mw1, mc1 = measure 1 in
  Printf.printf "%d points x %d configs x %d uops (%d uops per sweep)\n"
    npoints (List.length configs) per_point_uops total_uops;
  Printf.printf "%-14s %10s %14s %9s %10s %13s %9s\n" "domains" "wall s"
    "uops/sec" "speedup" "identical" "minor words" "minor gcs";
  let strategy_name = function
    | Clusteer_util.Parallel.Static -> "static"
    | Clusteer_util.Parallel.Steal -> "steal"
  in
  let row ~strategy ~domains (results, dt, mw, mc) =
    let identical =
      List.for_all2
        (fun (a : Runner.point_result) (b : Runner.point_result) ->
          List.for_all2
            (fun (_, x) (_, y) -> Stats.equal x y)
            a.Runner.runs b.Runner.runs)
        baseline results
    in
    let ups = float_of_int total_uops /. dt in
    let sname = strategy_name strategy in
    let label =
      if strategy = Clusteer_util.Parallel.Static then string_of_int domains
      else Printf.sprintf "%d (%s)" domains sname
    in
    Printf.printf "%-14s %10.3f %14.0f %8.2fx %10b %13.2e %9d\n" label dt ups
      (t1 /. dt) identical mw mc;
    ( Obs.Json.Obj
        [
          ("domains", Obs.Json.Int domains);
          ("strategy", Obs.Json.Str sname);
          ("seconds", Obs.Json.Float dt);
          ("uops_per_sec", Obs.Json.Float ups);
          ("speedup", Obs.Json.Float (t1 /. dt));
          ("identical", Obs.Json.Bool identical);
          ("minor_words", Obs.Json.Float mw);
          ("minor_collections", Obs.Json.Int mc);
        ],
      (strategy, domains, t1 /. dt, identical) )
  in
  let r1 =
    row ~strategy:Clusteer_util.Parallel.Static ~domains:1
      (baseline, t1, mw1, mc1)
  in
  let r2 = row ~strategy:Clusteer_util.Parallel.Static ~domains:2 (measure 2) in
  let r4 = row ~strategy:Clusteer_util.Parallel.Static ~domains:4 (measure 4) in
  (* Comparison row: the opt-in stealing schedule at the widest domain
     count, so the ledger records what the dynamic cursor costs (or
     buys) on this host. Never threshold-checked. *)
  let rsteal =
    row ~strategy:Clusteer_util.Parallel.Steal ~domains:4
      (measure ~strategy:Clusteer_util.Parallel.Steal 4)
  in
  let measured_rows = [ r1; r2; r4; rsteal ] in
  let rows = List.map fst measured_rows in
  let host_domains = Domain.recommended_domain_count () in
  let require = Sys.getenv_opt "CLUSTEER_BENCH_REQUIRE_SPEEDUP" = Some "1" in
  let failures = ref [] in
  List.iter
    (fun (strategy, domains, speedup, identical) ->
      if not identical then
        failures :=
          Printf.sprintf
            "bench-smoke: FAIL results at %d domains (%s) not bit-identical \
             to the sequential run"
            domains
            (strategy_name strategy)
          :: !failures;
      if
        require
        && strategy = Clusteer_util.Parallel.Static
        && domains > 1
      then
        let required = required_speedup domains in
        if host_domains < domains then
          Printf.printf
            "bench-smoke: SKIP speedup check at %d domains (host recommends \
             %d domain%s, cannot run %d in parallel)\n"
            domains host_domains
            (if host_domains = 1 then "" else "s")
            domains
        else if speedup < required then
          failures :=
            Printf.sprintf
              "bench-smoke: FAIL suite speedup at %d domains %.2fx < \
               required %.2fx"
              domains speedup required
            :: !failures
        else
          Printf.printf
            "bench-smoke: OK suite speedup at %d domains %.2fx >= %.2fx\n"
            domains speedup required)
    (List.map snd measured_rows);
  (* 2. Minor-heap words allocated per steering decision, against a
     constant-location probe view: the fast-path contract is 0.0 for
     every policy. *)
  let workload = Synth.build (Spec2000.find "gzip-1") in
  let annot =
    Clusteer.Hybrid.compile ~program:workload.Synth.program
      ~likely:workload.Synth.likely ~virtual_clusters:2 ()
  in
  let view = alloc_probe_view ~clusters:2 ~annot in
  let duop = Clusteer_trace.Tracegen.next (Synth.trace workload ~seed:1) in
  let policies =
    [
      ("op", Clusteer_steer.Op.make ());
      ("op-parallel", Clusteer_steer.Op_parallel.make ());
      ("dep", Clusteer_steer.Dep.make ());
      ("vc2", Clusteer_steer.Vc_map.make ~annot ~clusters:2 ());
    ]
  in
  Printf.printf "\n%-12s %22s\n" "policy" "minor words/decision";
  let alloc_fields =
    List.map
      (fun (name, policy) ->
        let words = minor_words_per_decide policy view duop in
        Printf.printf "%-12s %22.4f\n" name words;
        (name, Obs.Json.Float words))
      policies
  in
  (* 3. Engine-level allocation per committed micro-op (includes the
     trace generator — the whole per-uop simulation path). *)
  let engine_words =
    let annot, policy =
      Clusteer.Configuration.prepare Clusteer.Configuration.Op
        ~program:workload.Synth.program ~likely:workload.Synth.likely
        ~clusters:2 ()
    in
    let prewarm =
      Array.to_list
        (Array.map Clusteer_trace.Mem_model.extent workload.Synth.streams)
    in
    let engine =
      Clusteer_uarch.Engine.create ~config:Config.default_2c ~annot ~policy
        ~prewarm ()
    in
    let gen = Synth.trace workload ~seed:1 in
    let n = min uops 20_000 in
    let before = Gc.minor_words () in
    let stats =
      Clusteer_uarch.Engine.run ~warmup:0 engine
        ~source:(fun () -> Clusteer_trace.Tracegen.next gen)
        ~uops:n
    in
    (Gc.minor_words () -. before) /. float_of_int stats.Stats.committed
  in
  Printf.printf "%-12s %22.1f  (engine + tracegen, op policy)\n" "full-path"
    engine_words;
  write_bench_json
    [
      ("suite_throughput", Obs.Json.List rows);
      ("host_recommended_domains", Obs.Json.Int host_domains);
      ("speedup_enforced", Obs.Json.Bool require);
      ( "speedup_required",
        Obs.Json.Obj
          [
            ("2", Obs.Json.Float (required_speedup 2));
            ("4", Obs.Json.Float (required_speedup 4));
          ] );
      ("steering_alloc_words_per_decide", Obs.Json.Obj alloc_fields);
      ("engine_minor_words_per_uop", Obs.Json.Float engine_words);
    ];
  (* Run-ledger record of the speedup table (CLUSTEER_BENCH_LEDGER=DIR,
     set by `make bench-smoke`): the same durable trail `csteer
     experiment --ledger` leaves, so scaling regressions show up in
     `csteer runs list` next to everything else. *)
  let outcome = if !failures = [] then "ok" else "fail" in
  (match Sys.getenv_opt "CLUSTEER_BENCH_LEDGER" with
  | Some dir -> (
      try
        let ledger = Obs.Ledger.create ~dir in
        let committed =
          Obs.Counters.value (Obs.Counters.counter "harness.uops_committed")
        in
        let gc = Obs.Ledger.gc_sub (Obs.Ledger.gc_now ()) gc_start in
        let s =
          Obs.Ledger.append ledger ~kind:"bench" ~label:"suite_throughput"
            ~config:
              (Obs.Json.Obj
                 [
                   ("suite_throughput", Obs.Json.List rows);
                   ("host_recommended_domains", Obs.Json.Int host_domains);
                   ("speedup_enforced", Obs.Json.Bool require);
                 ])
            ~started ~wall_s:(Unix.gettimeofday () -. started) ~outcome
            ~uops:committed ~gc Obs.Counters.default
        in
        Printf.printf "bench ledger: run %d recorded in %s\n" s.Obs.Ledger.id
          dir
      with Sys_error msg -> Printf.eprintf "bench ledger not written: %s\n" msg)
  | None -> ());
  (* Fail last, after the JSON and ledger evidence is on disk. *)
  if !failures <> [] then begin
    List.iter print_endline (List.rev !failures);
    exit 1
  end

(* ---- auto-tuner study ---------------------------------------------------- *)

(* CLUSTEER_BENCH_STUDY=tune: one tiny champion/challenger cycle of
   the auto-tuner (deterministic 4-evaluation grid over the "vc" space
   on two workloads — the same shape `make tune-smoke` drives through
   the CLI), timed end to end. Reports evaluations/sec and the study
   verdict as BENCH JSON so tuner-throughput regressions are visible
   next to the simulation numbers. *)
let run_tune_study () =
  heading "Tune study: champion/challenger auto-tuner cycle";
  let module Tune = Clusteer_tune in
  let space =
    match Tune.Param_space.find "vc" with
    | Ok s -> s
    | Error (`Msg m) -> failwith m
  in
  let workloads = List.map Spec2000.find [ "gzip-1"; "vpr-1" ] in
  let max_evals = 4 in
  let tune_uops = min uops 4_000 in
  let t0 = Unix.gettimeofday () in
  let study =
    Tune.Study.run ~space ~algo:Tune.Search.Grid ~seed:1 ~max_evals ~workloads
      ~clusters:2 ~uops:tune_uops ~tie_seeds:1
      ~progress:(fun line -> Printf.printf "  %s\n" line)
      ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  let evals = List.length study.Tune.Study.evals in
  let winner = Tune.Study.winner study in
  Printf.printf "%d evaluations in %.3f s (%.2f evals/sec)\n" evals dt
    (float_of_int evals /. dt);
  Printf.printf "winner: %s (score %.4f)\n"
    (Tune.Param_space.label space winner.Tune.Study.candidate)
    winner.Tune.Study.score;
  write_bench_json
    [
      ("tune_space", Obs.Json.Str (Tune.Param_space.name space));
      ("tune_search", Obs.Json.Str study.Tune.Study.search);
      ("tune_evals", Obs.Json.Int evals);
      ("tune_uops", Obs.Json.Int tune_uops);
      ("tune_seconds", Obs.Json.Float dt);
      ("tune_evals_per_sec", Obs.Json.Float (float_of_int evals /. dt));
      ("tune_winner_score", Obs.Json.Float winner.Tune.Study.score);
      ( "tune_winner_label",
        Obs.Json.Str (Tune.Param_space.label space winner.Tune.Study.candidate)
      );
      ( "tune_challenger_wins",
        Obs.Json.Bool study.Tune.Study.ab.Tune.Study.challenger_wins );
    ]

(* ---- interconnect-topology study ----------------------------------------- *)

(* CLUSTEER_BENCH_STUDY=topo: price the interconnect fabrics the
   topology subsystem models (lib/topo) on an 8-cluster machine. The
   adversarial workloads are built to stress inter-cluster copies, so
   the mesh and hierarchical fabrics must visibly move the copy-stall
   and link-transfer counters off the paper's free point-to-point
   baseline; `make topo-smoke` greps the hier2x4 entries out of the
   BENCH JSON. *)
let run_topo_study () =
  heading "Topology study: copy cost across interconnect fabrics (8 clusters)";
  let bench_uops = min uops 5_000 in
  let topologies =
    [
      Topology.p2p ~clusters:8 ();
      Topology.ring ~clusters:8 ();
      Topology.mesh ~cols:4 ~rows:2 ();
      Topology.hier ~groups:2 ~group_size:4 ();
    ]
  in
  let workloads =
    Clusteer_workloads.Adversarial.all
    @ [ ("mcf", Synth.build (Spec2000.find "mcf")) ]
  in
  let configs =
    [
      Clusteer.Configuration.Op;
      Clusteer.Configuration.Vc { virtual_clusters = 2 };
    ]
  in
  Printf.printf "%-10s %-12s %-6s %8s %12s %12s %12s\n" "topology" "workload"
    "config" "ipc" "copies/kuop" "copy_stall%" "links/kuop";
  let entries =
    List.concat_map
      (fun topology ->
        let machine = { (Config.default ~clusters:8) with Config.topology } in
        List.concat_map
          (fun (wname, w) ->
            let runs =
              Runner.run_workload ~machine ~configs ~uops:bench_uops w
            in
            List.map
              (fun (cname, (s : Stats.t)) ->
                let per_kuop v =
                  1000.0 *. float_of_int v
                  /. float_of_int (max 1 s.Stats.committed)
                in
                let stall_pct =
                  100.0
                  *. float_of_int s.Stats.stall_copyq_full
                  /. float_of_int (max 1 s.Stats.cycles)
                in
                Printf.printf
                  "%-10s %-12s %-6s %8.3f %12.1f %11.1f%% %12.1f\n"
                  (Topology.name topology) wname cname (Stats.ipc s)
                  (per_kuop s.Stats.copies_generated)
                  stall_pct
                  (per_kuop s.Stats.link_transfers);
                Obs.Json.Obj
                  [
                    ("topology", Obs.Json.Str (Topology.name topology));
                    ("workload", Obs.Json.Str wname);
                    ("config", Obs.Json.Str cname);
                    ("ipc", Obs.Json.Float (Stats.ipc s));
                    ( "copies_per_kuop",
                      Obs.Json.Float (per_kuop s.Stats.copies_generated) );
                    ("copy_stall_pct", Obs.Json.Float stall_pct);
                    ( "links_per_kuop",
                      Obs.Json.Float (per_kuop s.Stats.link_transfers) );
                  ])
              runs)
          workloads)
      topologies
  in
  write_bench_json
    [
      ("topo_clusters", Obs.Json.Int 8);
      ("topo_uops", Obs.Json.Int bench_uops);
      ("topology_study", Obs.Json.List entries);
    ]

(* ---- prediction-accuracy study -------------------------------------------- *)

(* CLUSTEER_BENCH_STUDY=predict: how tight is the static communication
   cost model (lib/analysis) against simulated truth? Per workload and
   policy: the predicted copy rate (must-cross), the sound may-cross
   bound and the engine's measured copies/uop, plus the same drift
   check `csteer analyze --vs-run` runs. A drift error here means the
   static bound is unsound against the real engine — that is a build
   failure, not a data point. *)
let run_prediction_study () =
  heading "Prediction study: static cost model vs simulated copies (2 clusters)";
  let bench_uops = min uops 10_000 in
  let machine = Config.default ~clusters:2 in
  let workloads =
    List.map
      (fun n -> (n, Synth.build (Spec2000.find n)))
      [ "gzip-1"; "mcf"; "swim" ]
    @ Clusteer_workloads.Adversarial.all
  in
  let configs =
    [
      Clusteer.Configuration.Ob;
      Clusteer.Configuration.Vc { virtual_clusters = 2 };
      Clusteer.Configuration.Op;
    ]
  in
  Printf.printf "%-12s %-6s %10s %10s %10s %10s %6s\n" "workload" "config"
    "pred/uop" "bound/uop" "meas/uop" "bound use" "drift";
  let violations = ref 0 in
  let entries =
    List.concat_map
      (fun (wname, w) ->
        let program = w.Synth.program and likely = w.Synth.likely in
        List.map
          (fun config ->
            let registry = Obs.Counters.create () in
            let annot, policy =
              Clusteer.Configuration.prepare config ~program ~likely
                ~clusters:2 ~registry ()
            in
            let prewarm =
              Array.to_list
                (Array.map Clusteer_trace.Mem_model.extent w.Synth.streams)
            in
            let engine =
              Clusteer_uarch.Engine.create ~config:machine ~annot ~policy
                ~prewarm ()
            in
            let gen = Synth.trace w ~seed:1 in
            let stats =
              Clusteer_uarch.Engine.run ~warmup:0 engine
                ~source:(fun () -> Clusteer_trace.Tracegen.next gen)
                ~uops:bench_uops
            in
            let model, _ =
              Clusteer_analysis.Cost_model.analyze ~program ~annot
                ~topology:machine.Config.topology ~clusters:2 ()
            in
            let run =
              Clusteer_analysis.Dyn_check.observe_run ~registry stats
            in
            let drift =
              Clusteer_analysis.Dyn_check.check_drift ~model:model run
            in
            let errors =
              Clusteer_isa.Diag.count Clusteer_isa.Diag.Error drift
            in
            violations := !violations + errors;
            let cname = Clusteer.Configuration.name config in
            let dispatched =
              max 1 run.Clusteer_analysis.Dyn_check.dispatched
            in
            let measured =
              float_of_int stats.Stats.copies_generated
              /. float_of_int dispatched
            in
            let bound =
              Clusteer_analysis.Cost_model.copy_bound model ~dispatched
                ~remaps:run.Clusteer_analysis.Dyn_check.remaps
            in
            let bound_use =
              float_of_int stats.Stats.copies_generated
              /. float_of_int (max 1 bound)
            in
            Printf.printf "%-12s %-6s %10.3f %10.3f %10.3f %9.1f%% %6s\n"
              wname cname
              model.Clusteer_analysis.Cost_model.pred_copy_rate
              model.Clusteer_analysis.Cost_model.bound_copy_rate measured
              (100.0 *. bound_use)
              (if errors = 0 then "ok" else "FAIL");
            Obs.Json.Obj
              [
                ("workload", Obs.Json.Str wname);
                ("config", Obs.Json.Str cname);
                ( "pred_copy_rate",
                  Obs.Json.Float
                    model.Clusteer_analysis.Cost_model.pred_copy_rate );
                ( "bound_copy_rate",
                  Obs.Json.Float
                    model.Clusteer_analysis.Cost_model.bound_copy_rate );
                ("measured_copy_rate", Obs.Json.Float measured);
                ("bound_use", Obs.Json.Float bound_use);
                ("drift_errors", Obs.Json.Int errors);
              ])
          configs)
      workloads
  in
  write_bench_json
    [
      ("predict_uops", Obs.Json.Int bench_uops);
      ("prediction_study", Obs.Json.List entries);
    ];
  if !violations > 0 then begin
    Printf.eprintf
      "prediction study: %d drift violation(s) — the static bound is \
       unsound against the engine\n"
      !violations;
    exit 1
  end

(* ---- Bechamel micro-benchmarks ------------------------------------------- *)

let micro_point profile =
  let point = List.hd (Pinpoints.points profile) in
  point

let time_tables =
  Test.make ~name:"table1-3/complexity+config"
    (Staged.stage (fun () ->
         ignore (Clusteer_steer.Complexity.table_rows ());
         ignore (Config.describe Config.default_2c);
         ignore (Clusteer.Configuration.table3 ~clusters:2)))

let time_sec21 =
  Test.make ~name:"sec2.1/worked-example"
    (Staged.stage (fun () -> ignore (Experiments.section21_example ())))

let time_fig5_point =
  let point = micro_point (Spec2000.find "gzip-1") in
  Test.make ~name:"fig5/one-point-op-2c"
    (Staged.stage (fun () ->
         ignore
           (Runner.run_point ~warmup:200 ~machine:Config.default_2c
              ~configs:[ Clusteer.Configuration.Op ] ~uops:500 point)))

let time_fig6_metrics =
  let a = Stats.create ~clusters:2 and b = Stats.create ~clusters:2 in
  a.Stats.cycles <- 1000;
  a.Stats.copies_generated <- 10;
  b.Stats.cycles <- 1100;
  b.Stats.copies_generated <- 20;
  Test.make ~name:"fig6/scatter-metrics"
    (Staged.stage (fun () ->
         ignore (Metrics.speedup_pct ~of_:a ~over:b);
         ignore (Metrics.copy_reduction_pct ~of_:a ~over:b);
         ignore (Metrics.balance_improvement_pct ~of_:a ~over:b)))

let time_fig7_point =
  let point = micro_point (Spec2000.find "gzip-1") in
  Test.make ~name:"fig7/one-point-vc2-4c"
    (Staged.stage (fun () ->
         ignore
           (Runner.run_point ~warmup:200 ~machine:Config.default_4c
              ~configs:[ Clusteer.Configuration.Vc { virtual_clusters = 2 } ]
              ~uops:500 point)))

let time_vc_compile =
  let w = Synth.build (Spec2000.find "galgel") in
  Test.make ~name:"core/vc-partition-compile"
    (Staged.stage (fun () ->
         ignore
           (Clusteer.Hybrid.compile ~program:w.Synth.program
              ~likely:w.Synth.likely ~virtual_clusters:2 ())))

let time_rhop_compile =
  let w = Synth.build (Spec2000.find "galgel") in
  Test.make ~name:"core/rhop-compile"
    (Staged.stage (fun () ->
         ignore
           (Clusteer_compiler.Rhop.compile ~program:w.Synth.program
              ~likely:w.Synth.likely ~clusters:2 ())))

let time_tracegen =
  let w = Synth.build (Spec2000.find "gzip-1") in
  Test.make ~name:"substrate/tracegen-1k-uops"
    (Staged.stage (fun () ->
         let gen = Synth.trace w ~seed:1 in
         ignore (Clusteer_trace.Tracegen.take gen 1000)))

(* Observability overhead study: the engine guarantees that with no
   sink installed instrumentation is free (and the test suite checks
   the statistics stay bit-identical); here we price the "on" side —
   a full collector with interval telemetry on a real trace point. *)
let run_observability_overhead_study () =
  heading "Observability overhead (collector + interval telemetry)";
  let bench_uops = min uops 10_000 in
  let point = List.hd (Pinpoints.points (Spec2000.find "gzip-1")) in
  let configs = [ Clusteer.Configuration.Vc { virtual_clusters = 2 } ] in
  let run obs =
    let t0 = Sys.time () in
    let r =
      Runner.run_point ~machine:Config.default_2c ~configs ~uops:bench_uops ~obs
        point
    in
    (snd (List.hd r.Runner.runs), Sys.time () -. t0)
  in
  let off, t_off = run (fun _ -> None) in
  let null, t_null = run (fun _ -> Some Obs.Sink.null) in
  let col = Obs.Collector.create ~interval:1000 () in
  let on, t_on = run (fun _ -> Some (Obs.Collector.sink col)) in
  Printf.printf "statistics identical off/null/collector: %b\n"
    (Stats.equal off null && Stats.equal off on);
  Printf.printf "events %d (kept %d, dropped %d), interval samples %d\n"
    (Obs.Collector.event_count col)
    (List.length (Obs.Collector.events col))
    (Obs.Collector.dropped col)
    (List.length (Obs.Collector.samples col));
  Printf.printf "%-12s %10s\n" "sink" "cpu time";
  List.iter
    (fun (name, t) -> Printf.printf "%-12s %9.3fs\n" name t)
    [ ("off", t_off); ("null", t_null); ("collector", t_on) ]

let time_obs_off =
  let point = micro_point (Spec2000.find "gzip-1") in
  Test.make ~name:"obs/engine-500uops-no-sink"
    (Staged.stage (fun () ->
         ignore
           (Runner.run_point ~warmup:200 ~machine:Config.default_2c
              ~configs:[ Clusteer.Configuration.Op ] ~uops:500 point)))

let time_obs_collector =
  let point = micro_point (Spec2000.find "gzip-1") in
  Test.make ~name:"obs/engine-500uops-collector"
    (Staged.stage (fun () ->
         let col = Obs.Collector.create ~interval:100 () in
         ignore
           (Runner.run_point ~warmup:200 ~machine:Config.default_2c
              ~obs:(fun _ -> Some (Obs.Collector.sink col))
              ~configs:[ Clusteer.Configuration.Op ] ~uops:500 point)))

let run_microbenchmarks () =
  heading "Bechamel micro-benchmarks (ns per run, OLS on monotonic clock)";
  let tests =
    Test.make_grouped ~name:"clusteer"
      [
        time_tables;
        time_sec21;
        time_fig5_point;
        time_fig6_metrics;
        time_fig7_point;
        time_vc_compile;
        time_rhop_compile;
        time_tracegen;
        time_obs_off;
        time_obs_collector;
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name res acc -> (name, res) :: acc) results [] in
  List.iter
    (fun (name, res) ->
      match Analyze.OLS.estimates res with
      | Some (est :: _) ->
          if est > 1_000_000.0 then
            Printf.printf "%-40s %12.2f ms/run\n" name (est /. 1e6)
          else if est > 1_000.0 then
            Printf.printf "%-40s %12.2f us/run\n" name (est /. 1e3)
          else Printf.printf "%-40s %12.1f ns/run\n" name est
      | Some [] | None -> Printf.printf "%-40s (no estimate)\n" name)
    (List.sort compare rows)

let () =
  Printf.printf
    "clusteer bench harness: reproduction of Cai et al., IPPS 2008\n";
  (* CLUSTEER_BENCH_STUDY=throughput runs just the throughput/allocation
     study (the `make bench-smoke` entry point). *)
  match Sys.getenv_opt "CLUSTEER_BENCH_STUDY" with
  | Some "throughput" -> run_throughput_study ()
  | Some "tune" -> run_tune_study ()
  | Some "topo" -> run_topo_study ()
  | Some "predict" -> run_prediction_study ()
  | Some other ->
      Printf.eprintf
        "unknown CLUSTEER_BENCH_STUDY %S (try: throughput, tune, topo, \
         predict)\n"
        other;
      exit 2
  | None ->
  run_tables ();
  run_figures ();
  run_vc_threshold_ablation ();
  run_seq_par_ablation ();
  run_vc_count_ablation ();
  run_region_scope_ablation ();
  run_steer_depth_study ();
  run_extended_baselines ();
  run_topology_study ();
  run_vliw_study ();
  run_energy_study ();
  run_link_latency_study ();
  run_scaling_study ();
  run_prefetch_study ();
  run_kernel_table ();
  run_prediction_study ();
  run_observability_overhead_study ();
  run_throughput_study ();
  run_microbenchmarks ();
  print_newline ()
