open Clusteer_isa

type t = { id : int; blocks : int array; uops : Uop.t array }

let build ~program ~likely ~max_uops =
  if max_uops <= 0 then invalid_arg "Region.build: max_uops must be positive";
  let nblocks = Array.length program.Program.blocks in
  let placed = Array.make nblocks false in
  let regions = ref [] in
  let next_id = ref 0 in
  let grow seed =
    let blocks = ref [ seed ] in
    let count = ref (Array.length program.Program.blocks.(seed).Block.uops) in
    placed.(seed) <- true;
    let rec extend current =
      let blk = program.Program.blocks.(current) in
      let succs = blk.Block.succs in
      let choice =
        match Array.length succs with
        | 0 -> None
        | 1 -> Some succs.(0)
        | _ -> (
            match likely current with
            | Some i when i >= 0 && i < Array.length succs -> Some succs.(i)
            | Some _ | None -> None)
      in
      match choice with
      | Some nxt when (not placed.(nxt)) && !count < max_uops ->
          let sz = Array.length program.Program.blocks.(nxt).Block.uops in
          placed.(nxt) <- true;
          blocks := nxt :: !blocks;
          count := !count + sz;
          extend nxt
      | Some _ | None -> ()
    in
    extend seed;
    let block_arr = Array.of_list (List.rev !blocks) in
    let uops =
      Array.concat
        (Array.to_list
           (Array.map (fun b -> program.Program.blocks.(b).Block.uops) block_arr))
    in
    let r = { id = !next_id; blocks = block_arr; uops } in
    incr next_id;
    regions := r :: !regions
  in
  (* Seed from the entry first so the hot path gets the longest region,
     then sweep remaining blocks in id order. *)
  grow program.Program.entry;
  for b = 0 to nblocks - 1 do
    if not placed.(b) then grow b
  done;
  List.rev !regions

let find regions ~uop_id =
  let has r = Array.exists (fun (u : Uop.t) -> u.Uop.id = uop_id) r.uops in
  match List.find_opt has regions with
  | Some r -> r
  | None -> raise Not_found

let position r ~uop_id =
  let found = ref (-1) in
  Array.iteri
    (fun i (u : Uop.t) -> if u.Uop.id = uop_id && !found < 0 then found := i)
    r.uops;
  if !found < 0 then raise Not_found else !found
