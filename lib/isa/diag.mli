(** Shared structured diagnostics.

    One finding from a static check: a stable code (["IR003"],
    ["VC005"], ...), a severity, a human message and an optional
    program location. The compiler's partition summaries and the
    [lib/analysis] verifier both speak this type, so compiler warnings
    and analyzer findings print and serialize identically — and the
    [csteer check] driver can sort, count and JSON-encode them without
    knowing which pass produced what.

    Codes are grouped by namespace: [IR0xx] IR well-formedness,
    [VC0xx] virtual-cluster partition invariants, [PL0xx] static
    placement and criticality hints, [DYN0xx] dynamic steering-trace
    invariants, [CP0xx] compiler partition-quality findings. *)

type severity = Error | Warning | Info

type location = {
  uop : int;  (** static micro-op id, [-1] when not uop-scoped *)
  block : int;  (** block id, [-1] when unknown *)
  region : int;  (** compilation-region id, [-1] when unknown *)
}

type t = {
  code : string;  (** stable identifier, e.g. ["VC005"] *)
  severity : severity;
  message : string;
  loc : location;
}

val no_location : location

val make :
  ?uop:int -> ?block:int -> ?region:int -> severity -> code:string ->
  string -> t

val errorf :
  ?uop:int -> ?block:int -> ?region:int -> code:string ->
  ('a, unit, string, t) format4 -> 'a

val warnf :
  ?uop:int -> ?block:int -> ?region:int -> code:string ->
  ('a, unit, string, t) format4 -> 'a

val infof :
  ?uop:int -> ?block:int -> ?region:int -> code:string ->
  ('a, unit, string, t) format4 -> 'a

val severity_name : severity -> string
(** ["error"] / ["warning"] / ["info"]. *)

val severity_of_name : string -> severity option

val is_error : t -> bool

val count : severity -> t list -> int
(** Number of findings of exactly that severity. *)

val compare : t -> t -> int
(** Sort key: severity (errors first), then code, then location. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[VC005] uop 17 (block 3): message]. *)

val to_json : t -> Clusteer_obs.Json.t
(** [{"severity":...,"code":...,"message":...}] plus [uop]/[block]/
    [region] fields when located. *)

val of_json : Clusteer_obs.Json.t -> (t, string) result
(** Inverse of {!to_json}; unknown severities and missing fields are
    errors. *)
