lib/graphpart/partition.mli: Wgraph
