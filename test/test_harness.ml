(* Tests for the experiment harness: metrics arithmetic, the runner and
   the per-figure derivations on a miniature suite. *)

open Clusteer_uarch
open Clusteer_workloads
module Harness = Clusteer_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let stats_with ?(cycles = 100) ?(committed = 100) ?(copies = 0) ?(stalls = 0) ()
    =
  let s = Stats.create ~clusters:2 in
  s.Stats.cycles <- cycles;
  s.Stats.committed <- committed;
  s.Stats.copies_generated <- copies;
  s.Stats.stall_iq_full <- stalls;
  s

(* ---- Metrics ----------------------------------------------------------- *)

let test_metrics_slowdown () =
  let base = stats_with ~cycles:100 () in
  check_float "25% slower" 25.0
    (Harness.Metrics.slowdown_pct ~baseline:base (stats_with ~cycles:125 ()));
  check_float "equal" 0.0
    (Harness.Metrics.slowdown_pct ~baseline:base (stats_with ~cycles:100 ()));
  check_float "faster is negative" (-10.0)
    (Harness.Metrics.slowdown_pct ~baseline:base (stats_with ~cycles:90 ()))

let test_metrics_speedup () =
  check_float "vc 25% faster" 25.0
    (Harness.Metrics.speedup_pct
       ~of_:(stats_with ~cycles:100 ())
       ~over:(stats_with ~cycles:125 ()))

let test_metrics_copy_reduction () =
  check_float "halved" 50.0
    (Harness.Metrics.copy_reduction_pct
       ~of_:(stats_with ~copies:50 ())
       ~over:(stats_with ~copies:100 ()));
  check_float "zero base" 0.0
    (Harness.Metrics.copy_reduction_pct
       ~of_:(stats_with ~copies:50 ())
       ~over:(stats_with ~copies:0 ()));
  check_float "negative when worse" (-100.0)
    (Harness.Metrics.copy_reduction_pct
       ~of_:(stats_with ~copies:100 ())
       ~over:(stats_with ~copies:50 ()))

let test_metrics_balance_improvement () =
  check_float "fewer stalls" 40.0
    (Harness.Metrics.balance_improvement_pct
       ~of_:(stats_with ~stalls:60 ())
       ~over:(stats_with ~stalls:100 ()))

(* ---- Runner -------------------------------------------------------------- *)

let tiny_profile =
  { (Spec2000.find "gzip-1") with Profile.name = "tiny"; phases = 2 }

let configs2 = Clusteer.Configuration.table3 ~clusters:2

let test_runner_point_shape () =
  let point = List.hd (Pinpoints.points tiny_profile) in
  let result =
    Harness.Runner.run_point ~machine:Config.default_2c ~configs:configs2
      ~uops:2000 point
  in
  check_int "five configs" 5 (List.length result.Harness.Runner.runs);
  List.iter
    (fun (name, stats) ->
      check_bool "named" true (String.length name > 0);
      check_bool "committed" true
        (stats.Stats.committed >= 2000 && stats.Stats.committed < 2008))
    result.Harness.Runner.runs

let test_runner_same_trace_all_configs () =
  (* Every configuration must replay the identical dynamic stream: the
     committed counts and load/store totals agree. *)
  let point = List.hd (Pinpoints.points tiny_profile) in
  let result =
    Harness.Runner.run_point ~machine:Config.default_2c ~configs:configs2
      ~uops:2000 point
  in
  (* loads count at dispatch, so the in-flight tail differs slightly
     between configurations, but the replayed stream is the same. *)
  let loads = List.map (fun (_, s) -> s.Stats.loads) result.Harness.Runner.runs in
  let lo = List.fold_left min max_int loads
  and hi = List.fold_left max 0 loads in
  check_bool "loads agree within the in-flight window" true (hi - lo <= 64)

let test_runner_default_warmup_clamps () =
  (* Half the measured length within [2k, 10k], but always strictly
     below the budget: the old 2,000-uop floor made tiny runs warm up
     longer than they measured. *)
  check_int "normal range" 3000 (Harness.Runner.default_warmup 6000);
  check_int "capped" 10_000 (Harness.Runner.default_warmup 100_000);
  check_int "floor" 2000 (Harness.Runner.default_warmup 2500);
  check_int "tiny budget" 499 (Harness.Runner.default_warmup 500);
  check_int "single uop" 0 (Harness.Runner.default_warmup 1);
  check_int "degenerate" 0 (Harness.Runner.default_warmup 0);
  for uops = 1 to 50 do
    check_bool "strictly below budget" true
      (Harness.Runner.default_warmup uops < uops)
  done

let test_runner_tiny_run_completes () =
  (* Regression: with the old floor, a 200-uop run spent 2,000 uops
     warming up; now it completes measuring most of its budget. *)
  let point = List.hd (Pinpoints.points tiny_profile) in
  let result =
    Harness.Runner.run_point ~machine:Config.default_2c
      ~configs:[ Clusteer.Configuration.Op ] ~uops:200 point
  in
  let _, stats = List.hd result.Harness.Runner.runs in
  check_bool "commits its budget" true (stats.Stats.committed >= 200)

let test_runner_measured_and_profiled () =
  (* [measured] wraps a run with wall-clock and GC deltas; a profiled
     run feeds the phase-timing histograms and the committed-uop
     counter the ledger divides by. *)
  let module Obs = Clusteer_obs in
  let registry = Obs.Counters.create () in
  let prof = Obs.Profile.create ~registry () in
  let point = List.hd (Pinpoints.points tiny_profile) in
  let result, wall_s, gc =
    Harness.Runner.measured (fun () ->
        Harness.Runner.run_point ~registry ~profile:prof
          ~machine:Config.default_2c
          ~configs:
            [
              Clusteer.Configuration.Op;
              Clusteer.Configuration.Vc { virtual_clusters = 2 };
            ]
          ~uops:1000 point)
  in
  check_int "both configs ran" 2 (List.length result.Harness.Runner.runs);
  check_bool "wall clock advanced" true (wall_s >= 0.0);
  check_bool "allocation accounted" true (gc.Obs.Ledger.minor_words > 0.0);
  let committed =
    Obs.Counters.value
      (Obs.Counters.counter ~registry "harness.uops_committed")
  in
  let stats_sum =
    List.fold_left
      (fun a (_, s) -> a + s.Stats.committed)
      0 result.Harness.Runner.runs
  in
  check_int "committed counter matches stats" stats_sum committed;
  check_bool "uop attribution sane" true (committed >= 2000);
  (* One flush per engine phase per run: two configs = two samples. *)
  check_int "phase histogram samples" 2
    (Obs.Counters.hist_count
       (Obs.Counters.histogram ~registry "profile.engine.commit.ns"));
  check_bool "words/uop within the hot-path budget era" true
    (Obs.Ledger.minor_words_per_uop gc ~uops:committed >= 0.0)

let test_trace_seed_no_collisions () =
  (* The old affine formula (seed*31 + index + 101) collided across
     nearby benchmarks — e.g. (seed 1, phase 31) and (seed 2, phase 0)
     both mapped to 163. The splitmix-style mix must keep every
     realistic (seed, index) pair distinct. *)
  let base = Spec2000.find "gzip-1" in
  let seen = Hashtbl.create 8192 in
  let collisions = ref 0 in
  for seed = 0 to 499 do
    for index = 0 to 9 do
      let point =
        {
          Pinpoints.benchmark = "x";
          index;
          weight = 1.0;
          profile = { base with Profile.seed };
        }
      in
      let s = Harness.Runner.trace_seed point in
      check_bool "non-negative" true (s >= 0);
      if Hashtbl.mem seen s then incr collisions else Hashtbl.add seen s ()
    done
  done;
  check_int "all 5000 distinct" 0 !collisions

let test_trace_seed_deterministic () =
  let point = List.hd (Pinpoints.points tiny_profile) in
  check_int "stable across calls"
    (Harness.Runner.trace_seed point)
    (Harness.Runner.trace_seed point)

let test_runner_benchmark_covers_phases () =
  let results =
    Harness.Runner.run_benchmark ~machine:Config.default_2c
      ~configs:[ Clusteer.Configuration.Op ] ~uops:1000 tiny_profile
  in
  check_int "one result per phase" tiny_profile.Profile.phases
    (List.length results)

let test_runner_weighted_metric () =
  let results =
    Harness.Runner.run_benchmark ~machine:Config.default_2c
      ~configs:[ Clusteer.Configuration.Op ] ~uops:1000 tiny_profile
  in
  let v = Harness.Runner.weighted_metric results ~config:"op" ~f:(fun _ -> 7.0) in
  check_bool "weighted constant" true (abs_float (v -. 7.0) < 1e-9);
  Alcotest.check_raises "missing config"
    (Invalid_argument "Runner: configuration nope missing from results")
    (fun () ->
      ignore
        (Harness.Runner.weighted_metric results ~config:"nope" ~f:(fun _ -> 0.0)))

(* ---- Experiments ------------------------------------------------------------ *)

let mini_suite =
  [
    { (Spec2000.find "gzip-1") with Profile.phases = 1 };
    { (Spec2000.find "galgel") with Profile.phases = 1 };
  ]

let run2 =
  lazy
    (Harness.Experiments.run_2cluster ~uops:3000 ~profiles:mini_suite ())

let test_experiments_figure5_shape () =
  let fig = Harness.Experiments.figure5_of (Lazy.force run2) in
  check_int "two rows" 2 (List.length fig.Harness.Experiments.rows);
  let row = List.hd fig.Harness.Experiments.rows in
  check_int "four non-baseline configs" 4
    (List.length row.Harness.Experiments.slowdowns);
  check_bool "has one-cluster column" true
    (List.mem_assoc "one-cluster" row.Harness.Experiments.slowdowns);
  check_int "avgs arity" 4 (List.length fig.Harness.Experiments.cpu_avg)

let test_experiments_figure6_shape () =
  let fig = Harness.Experiments.figure6_of (Lazy.force run2) in
  check_int "one point per trace" 2
    (List.length fig.Harness.Experiments.vs_ob);
  check_int "three comparisons" 2 (List.length fig.Harness.Experiments.vs_op)

let test_experiments_figure7_runs () =
  let run =
    Harness.Experiments.run_4cluster ~uops:3000 ~profiles:mini_suite ()
  in
  let fig = Harness.Experiments.figure7_of run in
  let row = List.hd fig.Harness.Experiments.rows in
  check_bool "vc4 present" true
    (List.mem_assoc "vc4" row.Harness.Experiments.slowdowns);
  check_bool "vc2 present" true
    (List.mem_assoc "vc2" row.Harness.Experiments.slowdowns);
  (* §5.4 metric computes without error on the 4-cluster run. *)
  ignore (Harness.Experiments.copy_inflation run)

let test_experiments_section21 () =
  let r = Harness.Experiments.section21_example () in
  (* The sequential implementation places the dependent loads with
     their producer; the parallel one scatters them, costing exactly
     the paper's two extra copies. *)
  check_int "paper's delta" 2
    (r.Harness.Experiments.parallel_copies
   - r.Harness.Experiments.sequential_copies);
  Alcotest.(check (list int)) "sequential placement" [ 1; 1; 1 ]
    r.Harness.Experiments.sequential_placement

let test_experiments_csv_export () =
  let fig = Harness.Experiments.figure5_of (Lazy.force run2) in
  let path = Filename.temp_file "clusteer_fig5" ".csv" in
  Harness.Experiments.export_slowdowns ~path fig;
  check_bool "file exists" true (Sys.file_exists path);
  let ic = open_in path in
  let header = input_line ic in
  close_in ic;
  check_bool "header mentions benchmark" true
    (String.length header >= 9 && String.sub header 0 9 = "benchmark");
  Sys.remove path

let test_report_gnuplot_emission () =
  let fig = Harness.Experiments.figure5_of (Lazy.force run2) in
  let dir = Filename.temp_file "clusteer_report" "" in
  Sys.remove dir;
  let paths = Harness.Report.write_slowdown_figure ~dir ~name:"fig5" fig in
  check_int "two files" 2 (List.length paths);
  List.iter
    (fun p -> check_bool (p ^ " exists") true (Sys.file_exists p))
    paths;
  let gp = List.find (fun p -> Filename.check_suffix p ".gp") paths in
  let ic = open_in gp in
  let first = input_line ic in
  close_in ic;
  check_bool "gnuplot header" true
    (String.length first > 0 && first.[0] = '#');
  let scatter = Harness.Experiments.figure6_of (Lazy.force run2) in
  let spaths = Harness.Report.write_scatter_figure ~dir scatter in
  check_int "four files" 4 (List.length spaths);
  List.iter (fun p -> Sys.remove p) (paths @ spaths);
  Sys.rmdir dir

let () =
  Alcotest.run "clusteer_harness"
    [
      ( "metrics",
        [
          Alcotest.test_case "slowdown" `Quick test_metrics_slowdown;
          Alcotest.test_case "speedup" `Quick test_metrics_speedup;
          Alcotest.test_case "copy reduction" `Quick test_metrics_copy_reduction;
          Alcotest.test_case "balance improvement" `Quick test_metrics_balance_improvement;
        ] );
      ( "runner",
        [
          Alcotest.test_case "point shape" `Slow test_runner_point_shape;
          Alcotest.test_case "same trace everywhere" `Slow test_runner_same_trace_all_configs;
          Alcotest.test_case "covers phases" `Slow test_runner_benchmark_covers_phases;
          Alcotest.test_case "weighted metric" `Slow test_runner_weighted_metric;
          Alcotest.test_case "default warmup clamps" `Quick
            test_runner_default_warmup_clamps;
          Alcotest.test_case "tiny run completes" `Quick test_runner_tiny_run_completes;
          Alcotest.test_case "measured and profiled" `Quick
            test_runner_measured_and_profiled;
          Alcotest.test_case "trace seed collision-free" `Quick
            test_trace_seed_no_collisions;
          Alcotest.test_case "trace seed deterministic" `Quick
            test_trace_seed_deterministic;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "figure5 shape" `Slow test_experiments_figure5_shape;
          Alcotest.test_case "figure6 shape" `Slow test_experiments_figure6_shape;
          Alcotest.test_case "figure7 runs" `Slow test_experiments_figure7_runs;
          Alcotest.test_case "section 2.1" `Quick test_experiments_section21;
          Alcotest.test_case "csv export" `Slow test_experiments_csv_export;
          Alcotest.test_case "gnuplot emission" `Slow test_report_gnuplot_emission;
        ] );
    ]
