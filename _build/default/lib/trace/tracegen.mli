(** Trace generation: instantiate a program into a dynamic micro-op
    stream by walking its CFG under branch and memory models.

    A generator is deterministic in (program, models, seed): the same
    inputs yield the same trace, which is what lets every steering
    policy be evaluated on the *identical* dynamic instruction stream
    (the paper's trace-driven methodology). When the walk reaches a
    program exit it wraps to the entry while branch and memory model
    state keeps rolling (the trace is one long stream, not a periodic
    repeat), so any prefix length can be requested. *)

open Clusteer_isa

type t

val create :
  program:Program.t ->
  branches:Branch_model.t array ->
  streams:Mem_model.t array ->
  seed:int ->
  t
(** The model arrays must match the program's [branch_model_count] and
    [stream_count]. *)

val program : t -> Program.t

val next : t -> Dynuop.t
(** Next dynamic micro-op; restarts transparently at program exits.
    Raises [Failure] if the program can make no progress (entry block
    empty and self-looping). *)

val take : t -> int -> Dynuop.t array
(** [take t n] is the next [n] dynamic micro-ops. *)

val generated : t -> int
(** Dynamic micro-ops produced so far. *)
