lib/core/hybrid.ml: Clusteer_compiler Clusteer_steer Clusteer_uarch
