(** Adversarial scenario generator: pathological DDG shapes.

    The SPEC stand-ins ({!Spec2000}) and the hand-written kernels
    ({!Kernels}) are friendly inputs — their dependence structure is
    the kind steering policies were designed around. This module
    generates programs that are deliberately hostile to cluster
    steering, for measuring policy quality per topology on worst-case
    traffic rather than average-case:

    - {b fan-out} ([Fanout]): a few hot producers read by many
      independent consumers every iteration. Wherever the consumers
      are steered, most of them sit away from the producers, so every
      mis-steered consumer is a copy; the wide, shallow DDG gives the
      policy maximal freedom to get it wrong.
    - {b phase flips} ([Phase_flip]): two loop nests with opposite
      character — a wide independent integer phase, then a serial FP
      chain — alternating every [period] iterations. Each flip
      invalidates the load pattern the mapper just converged on,
      stressing remap latency and hysteresis.
    - {b copy storms} ([Copy_storm]): [chains] serial accumulators
      where every link also reads its neighbour [stride] away. Any
      placement that spreads the chains (as load balancing must)
      pays a cross-cluster copy per chain per iteration — sustained
      all-to-all link pressure.

    Every generated program is a deterministic function of its shape,
    built with {!Clusteer_isa.Program.Builder}, and passes the static
    verifier ([csteer check]) — property-tested in
    [test/test_topo.ml]. *)

type shape =
  | Fanout of { producers : int; consumers : int }
      (** [1 <= producers <= 12], [1 <= consumers <= 24] *)
  | Phase_flip of { period : int }  (** [1 <= period <= 4096] *)
  | Copy_storm of { chains : int; stride : int }
      (** [2 <= chains <= 16], [1 <= stride < chains] *)

val validate : shape -> (unit, string) result
(** Check the parameter ranges above. *)

val name : shape -> string
(** e.g. ["adv.fanout4x24"], ["adv.flip64"], ["adv.storm8x3"]. *)

val synth : shape -> Synth.t
(** Build the workload; raises [Invalid_argument] when {!validate}
    rejects the shape. Deterministic in [shape]. *)

val of_seed : int -> shape
(** A valid shape drawn deterministically from [seed] (splitmix64) —
    the qcheck property tests' generator. *)

val all : (string * Synth.t) list
(** Fixed representatives under their CLI names: ["adv-fanout"]
    (4 producers, 24 consumers), ["adv-flip"] (period 64) and
    ["adv-storm"] (8 chains, stride 3). *)
