type t = {
  nv : int;
  vwgt : float array;
  adj : (int * float) list array;
}

let create ~nv ~vwgt ~edges =
  if Array.length vwgt <> nv then invalid_arg "Wgraph.create: vwgt arity";
  let merged = Hashtbl.create (List.length edges) in
  List.iter
    (fun (a, b, w) ->
      if a = b then invalid_arg "Wgraph.create: self loop";
      if a < 0 || a >= nv || b < 0 || b >= nv then
        invalid_arg "Wgraph.create: endpoint out of range";
      if w < 0.0 then invalid_arg "Wgraph.create: negative edge weight";
      let key = if a < b then (a, b) else (b, a) in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt merged key) in
      Hashtbl.replace merged key (prev +. w))
    edges;
  let adj = Array.make nv [] in
  Hashtbl.iter
    (fun (a, b) w ->
      adj.(a) <- (b, w) :: adj.(a);
      adj.(b) <- (a, w) :: adj.(b))
    merged;
  { nv; vwgt; adj }

let node_count t = t.nv
let node_weight t i = t.vwgt.(i)
let total_weight t = Array.fold_left ( +. ) 0.0 t.vwgt
let neighbours t i = t.adj.(i)

let edge_weight t a b =
  match List.assoc_opt b t.adj.(a) with
  | Some w -> w
  | None -> 0.0

let fold_edges f t init =
  let acc = ref init in
  for a = 0 to t.nv - 1 do
    List.iter (fun (b, w) -> if a < b then acc := f a b w !acc) t.adj.(a)
  done;
  !acc

let degree t i = List.length t.adj.(i)
