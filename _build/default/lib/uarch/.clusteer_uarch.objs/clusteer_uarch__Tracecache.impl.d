lib/uarch/tracecache.ml: Array
