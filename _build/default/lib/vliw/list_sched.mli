(** Cluster-aware list scheduling for the VLIW substrate.

    Height-priority list scheduling with explicit inter-cluster moves:
    a value consumed on another cluster needs a move operation booked
    on the producer cluster's move slot, arriving [comm_latency]
    cycles later; once moved, the value is reused by later consumers
    on that cluster (like the rename-table location tracking of the
    dynamic machine).

    Two modes:
    - {!with_assignment}: cluster per node fixed beforehand (evaluating
      OB / RHOP / VC partitions on the static machine);
    - {!unified}: cluster chosen during scheduling, per node, for the
      earliest achievable issue — the "unified assign-and-schedule"
      family ([21] in the paper's bibliography), the VLIW-native
      baseline. *)

val with_assignment :
  Machine.t -> Clusteer_ddg.Ddg.t -> assignment:int array -> Schedule.t

val unified : Machine.t -> Clusteer_ddg.Ddg.t -> Schedule.t
