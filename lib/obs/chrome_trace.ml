let frontend_tid ~clusters = clusters

let meta ~pid ~tid name_field name =
  Json.Obj
    [
      ("name", Json.Str name_field);
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let instant ~name ~ts ~tid ?(args = []) () =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("ph", Json.Str "i");
       ("s", Json.Str "t");
       ("ts", Json.Int ts);
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
     ]
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let slice ~name ~ts ~dur ~tid ?(args = []) () =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("ph", Json.Str "X");
       ("ts", Json.Int ts);
       ("dur", Json.Int dur);
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
     ]
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let counter ~name ~ts args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "C");
      ("ts", Json.Int ts);
      ("pid", Json.Int 0);
      ("args", Json.Obj args);
    ]

let event_json ~clusters ev =
  let fe = frontend_tid ~clusters in
  match (ev : Event.t) with
  | Event.Steer { cycle; static_id; cluster; inflight } ->
      instant ~name:"steer" ~ts:cycle ~tid:cluster
        ~args:
          [
            ("uop", Json.Int static_id);
            ( "inflight",
              Json.List
                (Array.to_list (Array.map (fun n -> Json.Int n) inflight)) );
          ]
        ()
  | Event.Dispatch { cycle; iseq; static_id; cluster; queue } ->
      instant ~name:("dispatch:" ^ queue) ~ts:cycle ~tid:cluster
        ~args:[ ("iseq", Json.Int iseq); ("uop", Json.Int static_id) ]
        ()
  | Event.Copy_insert { cycle; tag; from_cluster; to_cluster; copyq_depth } ->
      instant ~name:"copy" ~ts:cycle ~tid:from_cluster
        ~args:
          [
            ("tag", Json.Int tag);
            ("to", Json.Int to_cluster);
            ("copyq_depth", Json.Int copyq_depth);
          ]
        ()
  | Event.Link_transfer { cycle; from_cluster; to_cluster; latency } ->
      slice
        ~name:(Printf.sprintf "link %d->%d" from_cluster to_cluster)
        ~ts:cycle ~dur:latency ~tid:from_cluster ()
  | Event.Stall { cycle; reason } ->
      instant
        ~name:("stall:" ^ Event.stall_reason_name reason)
        ~ts:cycle ~tid:fe ()
  | Event.Commit { cycle; iseq; cluster } ->
      instant ~name:"commit" ~ts:cycle ~tid:cluster
        ~args:[ ("iseq", Json.Int iseq) ]
        ()
  | Event.Redirect { cycle; resume } ->
      instant ~name:"redirect" ~ts:cycle ~tid:fe
        ~args:[ ("resume", Json.Int resume) ]
        ()

let sample_json (s : Interval.sample) =
  let ts = s.Interval.t_end in
  [
    counter ~name:"ipc" ~ts [ ("ipc", Json.Float s.Interval.ipc) ];
    counter ~name:"copy_rate" ~ts
      [ ("copies/uop", Json.Float s.Interval.copy_rate) ];
    counter ~name:"stalls" ~ts
      (Array.to_list
         (Array.mapi
            (fun i n -> (Event.stall_names.(i), Json.Int n))
            s.Interval.stall_breakdown));
    counter ~name:"dispatch" ~ts
      (Array.to_list
         (Array.mapi
            (fun c n -> (Printf.sprintf "c%d" c, Json.Int n))
            s.Interval.per_cluster));
  ]

let to_json ~clusters ~events ~samples =
  let fe = frontend_tid ~clusters in
  let metadata =
    meta ~pid:0 ~tid:0 "process_name" "clusteer"
    :: meta ~pid:0 ~tid:fe "thread_name" "frontend"
    :: List.init clusters (fun c ->
           meta ~pid:0 ~tid:c "thread_name" (Printf.sprintf "cluster %d" c))
  in
  let trace_events =
    metadata
    @ List.map (event_json ~clusters) events
    @ List.concat_map sample_json samples
  in
  Json.Obj
    [
      ("traceEvents", Json.List trace_events);
      ("displayTimeUnit", Json.Str "ns");
      ( "otherData",
        Json.Obj [ ("timestamp_unit", Json.Str "cycles (shown as us)") ] );
    ]

let write ~path ~clusters ~events ~samples =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.output oc (to_json ~clusters ~events ~samples);
      output_char oc '\n')
