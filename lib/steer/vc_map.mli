(** The hardware half of the paper's hybrid scheme (Figure 4): map
    virtual clusters to physical clusters at run time.

    The only state is a small table with one entry per virtual cluster
    and the per-cluster workload counters the engine already keeps.
    When a chain-leader mark is decoded, the counters are consulted
    and the leader's virtual cluster is remapped to the least-loaded
    physical cluster; every non-leader micro-op simply follows the
    current table entry. No dependence checking, no voting — the two
    components §4.3/Table 1 remove from the hardware-only design. *)

open Clusteer_isa

val make :
  ?remap_threshold:int ->
  ?registry:Clusteer_obs.Counters.registry ->
  ?topology:Clusteer_topo.Topology.t ->
  annot:Annot.t ->
  clusters:int ->
  unit ->
  Clusteer_uarch.Policy.t
(** [annot] must be a virtual-cluster annotation (scheme ["vc"]).
    The initial table maps virtual cluster [v] to physical cluster
    [v mod clusters]. A leader remaps its VC only when the current
    cluster leads the least-loaded one by more than [remap_threshold]
    in-flight micro-ops (§3's "certain threshold"; unit: in-flight
    micro-ops). Threshold 0 is the paper's literal semantics (always
    move to the least-loaded cluster); the default of 8 adds the
    hysteresis the ablation bench found to pay for itself — it trades
    a little balance for far fewer remap-induced copies. Micro-ops
    without a VC assignment go to the least-loaded cluster. The knob
    is swept by the auto-tuner through
    [Clusteer.Configuration.params.remap_threshold].

    [topology] (normally injected by the harness from the machine
    configuration) makes the mapper distance-aware on non-uniform
    fabrics: the remap target becomes the {e nearest} of the
    least-loaded clusters to the VC's current home
    ({!Clusteer_topo.Topology.distance}), and each remap's hop count
    is recorded in a [steer.remap.hops] histogram. On uniform fabrics
    (p2p, bus — or when [topology] is omitted) behavior and counters
    are bit-identical to the seed mapper and no extra histogram is
    registered.

    The policy registers introspection counters into [registry]
    (default {!Clusteer_obs.Counters.default}): [vc.decisions],
    [vc.unassigned], [vc.leader_decisions], [vc.remaps] and the
    [vc.chain_uops_at_leader] histogram (chain length observed when a
    leader consults the workload counters). Counts are per consult:
    a micro-op blocked at dispatch is re-decided, and re-counted,
    every cycle it retries. Counters never influence steering. *)
