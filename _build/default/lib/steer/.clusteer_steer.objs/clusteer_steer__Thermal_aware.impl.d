lib/steer/thermal_aware.ml: Array Clusteer_uarch Policy
