(* Run ledger: every experiment and serve batch leaves an on-disk
   artifact.

   Layout under the ledger directory:

     index.jsonl      one summary line per run, append-only
     run-000001.json  full entry: config, counters, GC, timings

   Entries are written tmp-then-rename so a crash never leaves a
   half-written run file, and the index is only appended after the
   run file is durable. Loading tolerates a torn final index line
   (crash mid-append) by skipping lines that do not parse; the next
   run id is recovered from both the index and the run files on disk,
   so a run whose index line was lost is never overwritten. *)

type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_collections : int;
  minor_collections : int;
}

let gc_now () =
  let s = Gc.quick_stat () in
  {
    (* [quick_stat]'s minor_words only advances at minor collections in
       native code; [Gc.minor_words] reads the allocation pointer. *)
    minor_words = Gc.minor_words ();
    promoted_words = s.Gc.promoted_words;
    major_collections = s.Gc.major_collections;
    minor_collections = s.Gc.minor_collections;
  }

let gc_sub a b =
  {
    minor_words = a.minor_words -. b.minor_words;
    promoted_words = a.promoted_words -. b.promoted_words;
    major_collections = a.major_collections - b.major_collections;
    minor_collections = a.minor_collections - b.minor_collections;
  }

let minor_words_per_uop gc ~uops =
  if uops > 0 then gc.minor_words /. float_of_int uops else 0.0

let gc_json ?(uops = 0) gc =
  Json.Obj
    [
      ("minor_words", Json.Float gc.minor_words);
      ("promoted_words", Json.Float gc.promoted_words);
      ("major_collections", Json.Int gc.major_collections);
      ("minor_collections", Json.Int gc.minor_collections);
      ( "engine_minor_words_per_uop",
        Json.Float (minor_words_per_uop gc ~uops) );
    ]

type summary = {
  id : int;
  kind : string;
  label : string;
  started : float;
  wall_s : float;
  outcome : string;
  uops : int;
  minor_words_per_uop : float;
  file : string;
}

type t = { dir : string; mutable next_id : int; mutable summaries : summary list }

let index_path dir = Filename.concat dir "index.jsonl"
let run_file id = Printf.sprintf "run-%06d.json" id
let run_path dir id = Filename.concat dir (run_file id)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ when Sys.is_directory d -> ()
    end
  in
  go dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"))

let summary_of_json j =
  match
    ( Option.bind (Json.member "id" j) Json.to_int,
      Option.bind (Json.member "kind" j) Json.to_str,
      Option.bind (Json.member "label" j) Json.to_str,
      Option.bind (Json.member "outcome" j) Json.to_str )
  with
  | Some id, Some kind, Some label, Some outcome ->
      let num name d =
        match Option.bind (Json.member name j) Json.to_float with
        | Some v -> v
        | None -> d
      in
      let int name d =
        match Option.bind (Json.member name j) Json.to_int with
        | Some v -> v
        | None -> d
      in
      Some
        {
          id;
          kind;
          label;
          started = num "started" 0.0;
          wall_s = num "wall_s" 0.0;
          outcome;
          uops = int "uops" 0;
          minor_words_per_uop = num "minor_words_per_uop" 0.0;
          file = run_file id;
        }
  | _ -> None

let summary_json s =
  Json.Obj
    [
      ("id", Json.Int s.id);
      ("kind", Json.Str s.kind);
      ("label", Json.Str s.label);
      ("started", Json.Float s.started);
      ("wall_s", Json.Float s.wall_s);
      ("outcome", Json.Str s.outcome);
      ("uops", Json.Int s.uops);
      ("minor_words_per_uop", Json.Float s.minor_words_per_uop);
      ("file", Json.Str s.file);
    ]

(* Crash recovery: a torn or corrupt index line is skipped, and ids
   present only as run files (index append lost) still advance
   [next_id] so they are never overwritten. *)
let load_index dir =
  let summaries = ref [] in
  let path = index_path dir in
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match Json.of_string line with
              | Ok j -> (
                  match summary_of_json j with
                  | Some s -> summaries := s :: !summaries
                  | None -> ())
              | Error _ -> ()
          done
        with End_of_file -> ())
  end;
  List.rev !summaries

let file_ids dir =
  Array.fold_left
    (fun acc name ->
      match Scanf.sscanf_opt name "run-%06d.json%!" (fun id -> id) with
      | Some id -> id :: acc
      | None -> acc)
    []
    (try Sys.readdir dir with Sys_error _ -> [||])

let create ~dir =
  mkdir_p dir;
  let summaries = load_index dir in
  let max_id =
    List.fold_left max 0
      (List.map (fun s -> s.id) summaries @ file_ids dir)
  in
  { dir; next_id = max_id + 1; summaries }

let dir t = t.dir

let write_atomic path json =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Json.output oc json;
      output_char oc '\n');
  Sys.rename tmp path

let append t ~kind ~label ?request_hash ?config ~started ~wall_s ~outcome
    ~uops ~gc counters =
  let id = t.next_id in
  t.next_id <- id + 1;
  let s =
    {
      id;
      kind;
      label;
      started;
      wall_s;
      outcome;
      uops;
      minor_words_per_uop = minor_words_per_uop gc ~uops;
      file = run_file id;
    }
  in
  let entry =
    Json.Obj
      (("id", Json.Int id)
       :: ("kind", Json.Str kind)
       :: ("label", Json.Str label)
       :: (match request_hash with
          | Some h -> [ ("request_hash", Json.Str h) ]
          | None -> [])
      @ (match config with Some c -> [ ("config", c) ] | None -> [])
      @ [
          ("started", Json.Float started);
          ("wall_s", Json.Float wall_s);
          ("outcome", Json.Str outcome);
          ("uops", Json.Int uops);
          ("gc", gc_json ~uops gc);
          ("counters", Counters.to_json counters);
        ])
  in
  write_atomic (run_path t.dir id) entry;
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 (index_path t.dir)
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Json.output oc (summary_json s);
      output_char oc '\n');
  t.summaries <- t.summaries @ [ s ];
  s

let list t = t.summaries

let load t id =
  let path = run_path t.dir id in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.of_string (String.trim text) with
    | Ok j -> Some j
    | Error _ -> None
  end

let prune t ~keep =
  let keep = max 0 keep in
  let n = List.length t.summaries in
  if n <= keep then 0
  else begin
    let drop = n - keep in
    let rec split i = function
      | rest when i = 0 -> ([], rest)
      | [] -> ([], [])
      | s :: rest ->
          let old, kept = split (i - 1) rest in
          (s :: old, kept)
    in
    let old, kept = split drop t.summaries in
    List.iter
      (fun s ->
        let p = run_path t.dir s.id in
        if Sys.file_exists p then try Sys.remove p with Sys_error _ -> ())
      old;
    (* Rewrite the index atomically so a crash mid-prune leaves either
       the old or the new index, never a truncated one. *)
    let tmp = index_path t.dir ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun s ->
            Json.output oc (summary_json s);
            output_char oc '\n')
          kept);
    Sys.rename tmp (index_path t.dir);
    t.summaries <- kept;
    drop
  end
