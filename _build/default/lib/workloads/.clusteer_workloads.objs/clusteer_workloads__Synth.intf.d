lib/workloads/synth.mli: Branch_model Clusteer_isa Clusteer_trace Mem_model Profile Program Tracegen
