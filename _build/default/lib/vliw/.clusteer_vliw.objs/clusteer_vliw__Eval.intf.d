lib/vliw/eval.mli: Clusteer_ddg Clusteer_isa Machine Program
