(* Pipeline self-profiler: named wall-clock spans aggregated into the
   counter registry's histograms.

   A span accumulates elapsed nanoseconds across any number of
   enter/leave pairs and contributes ONE histogram observation per
   flush — the engine enters/leaves a phase span every cycle and
   flushes once per run, so the [profile.*] histograms hold
   per-run phase totals and their percentiles summarize across runs.
   Like the event sink, the profiler is an option at every
   instrumentation site: disabled costs one pattern match and no
   allocation. *)

type span = {
  name : string;
  hist : Counters.histogram;
  clock : unit -> float;
  mutable t0 : float;  (* seconds at enter; nan when not inside *)
  mutable acc_ns : float;  (* accumulated since the last flush *)
}

type t = {
  registry : Counters.registry;
  clock : unit -> float;
  spans : (string, span) Hashtbl.t;
  mutable all : span list;
}

let create ?(registry = Counters.default) ?(clock = Unix.gettimeofday) () =
  { registry; clock; spans = Hashtbl.create 8; all = [] }

let hist_name name = "profile." ^ name ^ ".ns"

let span t name =
  match Hashtbl.find_opt t.spans name with
  | Some s -> s
  | None ->
      let s =
        {
          name;
          hist = Counters.histogram ~registry:t.registry (hist_name name);
          clock = t.clock;
          t0 = Float.nan;
          acc_ns = 0.0;
        }
      in
      Hashtbl.add t.spans name s;
      t.all <- s :: t.all;
      s

let enter (s : span) = s.t0 <- s.clock ()

let leave (s : span) =
  if not (Float.is_nan s.t0) then begin
    s.acc_ns <- s.acc_ns +. (Float.max 0.0 (s.clock () -. s.t0) *. 1e9);
    s.t0 <- Float.nan
  end

let flush s =
  Counters.observe s.hist (int_of_float s.acc_ns);
  s.acc_ns <- 0.0

let flush_all t = List.iter flush t.all

let time s f =
  enter s;
  Fun.protect
    ~finally:(fun () ->
      leave s;
      flush s)
    f
