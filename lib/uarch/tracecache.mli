(** Trace cache model (Table 2: "24K micro-op trace cache, 6
    micro-ops/cycle").

    The front-end fetches up to six micro-ops per cycle from trace
    lines. A line holds [line_uops] consecutive static micro-ops,
    indexed by static micro-op id; 4-way set-associative with LRU.
    A miss stalls fetch for [miss_penalty] cycles while the line is
    rebuilt from the instruction cache and fills the trace cache.

    For the synthetic SPEC stand-ins the static footprint is far below
    24K micro-ops, so after the first touches the trace cache always
    hits — matching the paper's front-end, which is never presented as
    a bottleneck. The model still matters for large static footprints
    (see the icache-stress tests) and exposes its statistics. *)

type t

val create : size_uops:int -> line_uops:int -> ways:int -> t
(** [size_uops] and [line_uops] must be positive; lines = size/line
    rounded down must be a positive multiple of [ways] with a
    power-of-two set count. *)

val lookup : t -> static_id:int -> bool
(** [lookup t ~static_id] is [true] on a hit. A miss fills the line
    (the caller charges the rebuild penalty). *)

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit

val reset : t -> unit
(** Back to the post-{!create} state: every line invalid, recency and
    statistics cleared. Used by engine reuse across runs. *)
