(** Canonical simulation requests and their content hash.

    A request pins everything a simulation's result depends on —
    workload profile (by name, plus optional profile overrides),
    simulation point, machine size, steering policy, measured budget,
    warmup and trace seed — and {b nothing else} (deadlines, ids and
    other delivery metadata live in the protocol envelope, so they
    never perturb the hash). Two requests that mean the same
    simulation are the same bytes:

    - fields are encoded in one fixed order ({!canonical_string});
    - the workload name is resolved to the profile's full name at
      construction (["mcf"] and ["181.mcf"] hash identically);
    - floats are encoded {e integer-exactly} as their IEEE-754 bit
      pattern ([f64:<16 hex digits>]), never as decimal text, so no
      formatting/parsing round-trip can split one value into two
      encodings;
    - absent optional fields encode as [null] (an explicit value equal
      to the default is a {e different} request by design — the
      default derivation may evolve);
    - {!of_json} rejects unknown fields, so a schema change cannot
      silently alias two distinct requests.

    The {!hash} of the canonical bytes (FNV-1a 64, 16 lowercase hex
    digits) is the key of the service's content-addressed result
    cache: PR 2's determinism guarantee makes equal hashes imply
    bit-identical results. *)

type overrides = {
  fp_ratio : float option;
  mem_ratio : float option;
  ilp : int option;
  footprint_kb : int option;
}
(** Optional knobs applied over the named profile before simulation-
    point derivation — the service-side door to scenarios the stock
    suite does not cover. *)

val no_overrides : overrides

type t = {
  workload : string;  (** full profile name, e.g. ["181.mcf"] *)
  phase : int;  (** simulation-point index, from 0 *)
  clusters : int;
  policy : Clusteer.Configuration.t;
  uops : int;
  warmup : int option;  (** [None] = {!Clusteer_harness.Runner.default_warmup} *)
  seed : int option;  (** [None] = {!Clusteer_harness.Runner.trace_seed} *)
  overrides : overrides;
}

val make :
  workload:string ->
  ?phase:int ->
  ?clusters:int ->
  ?policy:Clusteer.Configuration.t ->
  ?uops:int ->
  ?warmup:int ->
  ?seed:int ->
  ?overrides:overrides ->
  unit ->
  t
(** Defaults: phase 0, 2 clusters, policy [vc2], 20,000 uops. The
    workload name is canonicalized through
    {!Clusteer_workloads.Spec2000.find} when it names a known profile
    and kept verbatim otherwise (execution will then reject it). *)

val apply_overrides :
  Clusteer_workloads.Profile.t -> overrides -> Clusteer_workloads.Profile.t
(** The named profile with the request's overrides applied — shared by
    the server's resolution step and the admission validator. *)

val check : t -> (unit, string) result
(** Run the installed admission check (default: accept everything).
    The server consults this before queuing a cache-miss simulation
    and answers [Error] with a [check_failed] rejection. *)

val check_hook : (t -> (unit, string) result) ref
(** Replaceable admission check; {!Validate.install} points it at the
    static analyzer. Exposed so tests can stub it. *)

val canonical : t -> Clusteer_obs.Json.t
(** The canonical encoding as a JSON tree (fixed field order). *)

val canonical_string : t -> string
(** Compact single-line rendering of {!canonical} — the exact bytes
    that are hashed and sent on the wire. *)

val hash : t -> string
(** FNV-1a 64 of {!canonical_string}, as 16 lowercase hex digits. *)

val of_json : Clusteer_obs.Json.t -> (t, string) result
(** Decode a request object. Accepts floats as plain JSON numbers or
    as [f64:] bit patterns (both canonicalize identically); rejects
    unknown fields, wrong types and non-positive [clusters]/[uops]. *)

val equal : t -> t -> bool
