lib/graphpart/coarsen.ml: Array Clusteer_util Fun List Wgraph
