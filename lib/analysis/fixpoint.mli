(** Generic worklist fixpoint solver over a block CFG.

    The dataflow analyses in this library (liveness, reaching placement
    origins) are all instances of one scheme: a join-semilattice of
    facts, a per-block monotone transfer function, and iteration to a
    fixed point over the control-flow graph in either direction. This
    module is that scheme, parameterized so the property tests can feed
    it arbitrary graphs and lattices.

    Semantics: writing flow-predecessors for the CFG predecessors under
    [Forward] and the CFG successors under [Backward],

    - [input b] = join of [seed b] (when given) and the [output] of
      every flow-predecessor of [b];
    - [output b] = [transfer b (input b)].

    On return both equations hold at every block (local consistency —
    the property the qcheck suite pins). Every block is transferred at
    least once, so facts are defined even for unreachable blocks. *)

type direction = Forward | Backward

type 'a lattice = {
  bottom : 'a;  (** least element; initial value of every fact *)
  equal : 'a -> 'a -> bool;
  join : 'a -> 'a -> 'a;
}

type cfg = {
  nblocks : int;
  succs : int -> int array;
      (** control-flow successors of a block, ids in [\[0, nblocks)] *)
}

type 'a result = {
  input : 'a array;
      (** per block: fact flowing {e into} the transfer function. For a
          backward analysis this is the fact at the block's {e end}
          (e.g. live-out). *)
  output : 'a array;
      (** per block: [transfer b (input b)]. For a backward analysis
          the fact at the block's start (e.g. live-in). *)
  iterations : int;  (** transfer applications until convergence *)
}

exception Diverged of int
(** Raised when the solver exhausts its fuel — the transfer function is
    not monotone or the lattice has unbounded height. Carries the
    iteration count reached. *)

val of_program : Clusteer_isa.Program.t -> cfg
(** The program's block graph as a solver CFG. *)

val solve :
  ?order:int array ->
  ?fuel:int ->
  ?seed:(int -> 'a option) ->
  direction:direction ->
  lattice:'a lattice ->
  cfg:cfg ->
  transfer:(int -> 'a -> 'a) ->
  unit ->
  'a result
(** Iterate to the least fixed point.

    [order] is a processing priority (a permutation of block ids):
    blocks are first visited in that order and re-enqueued succs are
    pushed in it too. The fixed point of a monotone transfer over a
    finite-height lattice does not depend on it — the order-independence
    property test feeds random permutations. Default: ascending ids.

    [seed b] is an extra boundary fact joined into block [b]'s input
    (e.g. "all registers externally defined" at the entry). Default:
    none.

    [fuel] caps transfer applications (default [64 * (n+1)^2 + 256]);
    exceeding it raises {!Diverged}. *)
