lib/uarch/bpred.mli:
