lib/ddg/region.mli: Clusteer_isa Program Uop
