(** Plain-text scatter plots, for rendering the paper's Figure 6
    panels directly in terminal output. *)

val scatter :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (float * float) list ->
  string
(** [scatter points] renders an ASCII scatter plot (default 64x20
    characters). Axes are scaled to the data (always including the
    origin), zero lines are drawn with ['-'] / ['|'], points with
    ['*'] (['@'] where several points coincide). Returns [""] for an
    empty point list. *)
