lib/harness/report.ml: Clusteer_util Experiments Filename Fun List Printf String Sys
