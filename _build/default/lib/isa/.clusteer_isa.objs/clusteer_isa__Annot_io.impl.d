lib/isa/annot_io.ml: Annot Array Buffer Fun List Printf String
