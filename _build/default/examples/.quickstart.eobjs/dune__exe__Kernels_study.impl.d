examples/kernels_study.ml: Clusteer Clusteer_harness Clusteer_uarch Clusteer_util Clusteer_workloads Fmt List Printf
