lib/uarch/tracecache.mli:
