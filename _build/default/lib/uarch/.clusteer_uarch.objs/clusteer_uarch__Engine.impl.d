lib/uarch/engine.ml: Annot Array Bpred Clusteer_isa Clusteer_trace Clusteer_util Config Dynuop Hashtbl List Memsys Opcode Option Policy Printf Reg Stats Tracecache Uop
