open Clusteer_isa

type t = {
  nregs : int;
  live_in : int array array;
  live_out : int array array;
  dead_defs : (int * Reg.t) list;
  peak_int : int;
  peak_fp : int;
  iterations : int;
}

let codes = [ "LIV001"; "LIV002"; "LIV003" ]

(* Bitvectors over encoded registers, 62 bits per word so every word
   stays an immediate int. Facts are treated as immutable: transfer
   allocates, which is fine off the simulation hot path. *)
let bits_per_word = 62

let vec_words nbits = (nbits + bits_per_word - 1) / bits_per_word

let vec_get v i = v.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let vec_set v i = v.(i / bits_per_word) <- v.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let vec_clear v i =
  v.(i / bits_per_word) <- v.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))

let vec_equal = ( = )

let vec_join a b = Array.mapi (fun i w -> w lor b.(i)) a

let lattice nwords =
  {
    Fixpoint.bottom = Array.make nwords 0;
    equal = vec_equal;
    join = vec_join;
  }

let analyze (p : Program.t) =
  let nregs = p.Program.nregs_per_class in
  let nbits = 2 * nregs in
  let nwords = vec_words nbits in
  let code r = Reg.encode ~nregs_per_class:nregs r in
  let cfg = Fixpoint.of_program p in
  (* Block-level gen (upward-exposed uses) / kill (defs). *)
  let gen = Array.init cfg.Fixpoint.nblocks (fun _ -> Array.make nwords 0) in
  let kill = Array.init cfg.Fixpoint.nblocks (fun _ -> Array.make nwords 0) in
  Array.iteri
    (fun b (blk : Block.t) ->
      Array.iter
        (fun (u : Uop.t) ->
          Array.iter
            (fun r ->
              let c = code r in
              if not (vec_get kill.(b) c) then vec_set gen.(b) c)
            u.Uop.srcs;
          match u.Uop.dst with
          | Some r -> vec_set kill.(b) (code r)
          | None -> ())
        blk.Block.uops)
    p.Program.blocks;
  let transfer b out =
    (* live-in = gen ∪ (live-out − kill) *)
    Array.mapi (fun i w -> gen.(b).(i) lor (w land lnot kill.(b).(i))) out
  in
  let r =
    Fixpoint.solve ~direction:Fixpoint.Backward ~lattice:(lattice nwords) ~cfg
      ~transfer ()
  in
  let live_out = r.Fixpoint.input and live_in = r.Fixpoint.output in
  (* Per-uop walk, backwards through each block: dead definitions and
     peak per-class pressure at micro-op granularity. *)
  let dead = ref [] in
  let peak_int = ref 0 and peak_fp = ref 0 in
  let measure live =
    let ints = ref 0 and fps = ref 0 in
    for i = 0 to nbits - 1 do
      if vec_get live i then if i < nregs then incr ints else incr fps
    done;
    if !ints > !peak_int then peak_int := !ints;
    if !fps > !peak_fp then peak_fp := !fps
  in
  Array.iteri
    (fun b (blk : Block.t) ->
      let live = Array.copy live_out.(b) in
      measure live;
      for i = Array.length blk.Block.uops - 1 downto 0 do
        let u = blk.Block.uops.(i) in
        (match u.Uop.dst with
        | Some r ->
            let c = code r in
            if not (vec_get live c) then dead := (u.Uop.id, r) :: !dead;
            vec_clear live c
        | None -> ());
        Array.iter (fun r -> vec_set live (code r)) u.Uop.srcs;
        measure live
      done)
    p.Program.blocks;
  let dead_defs = List.sort (fun (a, _) (b, _) -> compare a b) !dead in
  {
    nregs;
    live_in;
    live_out;
    dead_defs;
    peak_int = !peak_int;
    peak_fp = !peak_fp;
    iterations = r.Fixpoint.iterations;
  }

let live_at_entry t ~block =
  let regs = ref [] in
  for i = (2 * t.nregs) - 1 downto 0 do
    if vec_get t.live_in.(block) i then
      regs := Reg.decode ~nregs_per_class:t.nregs i :: !regs
  done;
  List.sort Reg.compare !regs

let max_located_dead = 8

let check ?int_budget ?fp_budget (p : Program.t) =
  let t = analyze p in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let ndead = List.length t.dead_defs in
  List.iteri
    (fun i (id, r) ->
      if i < max_located_dead then
        add
          (Diag.infof ~uop:id
             ~block:(Program.block_of_uop p id)
             ~code:"LIV001" "definition of %s is dead (no path reads it)"
             (Reg.to_string r)))
    t.dead_defs;
  if ndead > max_located_dead then
    add
      (Diag.infof ~code:"LIV001" "%d further dead definitions not listed"
         (ndead - max_located_dead));
  add
    (Diag.infof ~code:"LIV002"
       "peak live registers: %d INT, %d FP (of %d per class); %d dead \
        definition(s)"
       t.peak_int t.peak_fp t.nregs ndead);
  let over cls peak budget =
    match budget with
    | Some b when peak > b ->
        add
          (Diag.warnf ~code:"LIV003"
             "peak %s pressure %d exceeds the physical register file (%d); \
              renaming must stall regardless of steering"
             cls peak b)
    | _ -> ()
  in
  over "INT" t.peak_int int_budget;
  over "FP" t.peak_fp fp_budget;
  List.rev !diags
