(** Run ledger: every experiment and serve batch recorded as an
    on-disk artifact.

    A ledger directory holds one [run-NNNNNN.json] file per run (full
    entry: config, counter/histogram snapshot with percentiles, GC
    deltas, wall time, outcome) plus an append-only [index.jsonl] of
    one summary line per run. Run files are written tmp-then-rename,
    and the index line only after the run file is durable, so a crash
    at any point leaves either a complete entry or no entry. Loading
    skips torn index lines and recovers the next run id from both the
    index and the run files, so ids are never reused.

    Filesystem failures surface as [Sys_error] — the CLI's standard
    one-line-diagnostic-and-exit-1 path. *)

type t

(** {1 GC accounting}

    Allocation deltas captured around each run: the zero-allocation
    steering hot path (PR 4) is held to its budget by the
    [engine_minor_words_per_uop] figure recorded in every entry. *)

type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_collections : int;
  minor_collections : int;
}

val gc_now : unit -> gc_delta
(** Snapshot of [Gc.quick_stat] in delta form. *)

val gc_sub : gc_delta -> gc_delta -> gc_delta
(** [gc_sub after before] is the allocation between two snapshots. *)

val minor_words_per_uop : gc_delta -> uops:int -> float
(** Minor-heap words per committed uop; 0 when [uops = 0]. *)

val gc_json : ?uops:int -> gc_delta -> Json.t
(** The entry's ["gc"] object, including
    ["engine_minor_words_per_uop"]. *)

(** {1 Ledger} *)

type summary = {
  id : int;
  kind : string;  (** ["simulate"], ["experiment"], ["serve_batch"] *)
  label : string;
  started : float;  (** Unix time the run began *)
  wall_s : float;
  outcome : string;  (** ["ok"] or an error tag *)
  uops : int;  (** committed uops attributed to the run *)
  minor_words_per_uop : float;
  file : string;  (** run file name relative to the ledger dir *)
}

val create : dir:string -> t
(** Open (creating directories as needed) and load the index. Raises
    [Sys_error] when [dir] cannot be created or is not a directory. *)

val dir : t -> string

val append :
  t ->
  kind:string ->
  label:string ->
  ?request_hash:string ->
  ?config:Json.t ->
  started:float ->
  wall_s:float ->
  outcome:string ->
  uops:int ->
  gc:gc_delta ->
  Counters.registry ->
  summary
(** Durably record one run: write its [run-NNNNNN.json] (atomic
    tmp-then-rename), then append the summary line to [index.jsonl].
    The registry snapshot is embedded via {!Counters.to_json}, so
    phase-timing percentiles ride along when a profiler fed it. *)

val list : t -> summary list
(** Summaries in id order. *)

val load : t -> int -> Json.t option
(** Full entry for a run id; [None] when absent or unreadable. *)

val prune : t -> keep:int -> int
(** Delete all but the newest [keep] runs (files and index lines; the
    index is rewritten atomically). Returns how many were removed. *)
