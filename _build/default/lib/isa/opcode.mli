(** Micro-op opcode classes.

    The reproduction does not interpret operand values; what matters to
    steering is each micro-op's latency, functional-unit class and which
    per-cluster issue queue it occupies (Table 2 of the paper: 48-entry
    INT, 48-entry FP and 24-entry COPY queues per cluster). *)

type t =
  | Int_alu  (** add/sub/logic/shift, 1 cycle *)
  | Int_mul  (** integer multiply, 3 cycles *)
  | Int_div  (** integer divide, 20 cycles, unpipelined *)
  | Fp_add   (** FP add/sub/convert, 3 cycles *)
  | Fp_mul   (** FP multiply, 5 cycles *)
  | Fp_div   (** FP divide/sqrt, 20 cycles, unpipelined *)
  | Load     (** address generation + data cache access *)
  | Store    (** address generation; retires through the LSQ *)
  | Branch   (** conditional or indirect control transfer *)
  | Copy     (** inter-cluster register copy (runtime-generated only) *)

type queue = Int_queue | Fp_queue | Copy_queue

type fu =
  | Fu_alu   (** simple integer units (also used by Load/Store AGU and Branch) *)
  | Fu_imul
  | Fu_fp
  | Fu_copy

val latency : t -> int
(** Execution latency in cycles. For {!Load} this is the
    address-generation latency; cache access time is added by the
    memory system. *)

val pipelined : t -> bool
(** Whether a unit can accept a new micro-op every cycle. *)

val queue : t -> queue
(** Which per-cluster issue queue holds the micro-op. Loads, stores and
    branches share the INT queue, as in the baseline architecture. *)

val fu : t -> fu
val is_mem : t -> bool
val writes_fp : t -> bool
val all : t array
val to_string : t -> string
val pp : Format.formatter -> t -> unit
