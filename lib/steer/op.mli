(** OP: occupancy-aware hardware-only steering (González, Latorre &
    González [15] — the paper's baseline, "one of the best
    hardware-only steering algorithms in the literature").

    Sequential dependence-based steering: each micro-op, in program
    order and with fully up-to-date rename-table locations, votes for
    the cluster holding most of its source operands; ties go to the
    least-loaded cluster. Occupancy-awareness adds stall-over-steer:
    when the preferred cluster's issue queue is (nearly) full it is
    better to stall the front-end than to steer the micro-op away from
    its operands — unless another cluster is comfortably idle.

    This is precisely the serialized logic whose hardware cost §2.1
    argues is prohibitive; the simulator charges no extra latency for
    it, making OP an *upper* bound, which is the paper's methodology
    (every scheme is reported as slowdown against OP). *)

val make :
  ?stall_threshold:int ->
  ?imbalance_limit:int ->
  ?registry:Clusteer_obs.Counters.registry ->
  ?topology:Clusteer_topo.Topology.t ->
  unit ->
  Clusteer_uarch.Policy.t
(** [stall_threshold] (unit: free issue-queue slots, default 36, the
    constant [15] tunes): minimum free issue-queue slots another
    cluster must have before OP steers away from the preferred cluster
    instead of stalling. [imbalance_limit] (unit: in-flight micro-op
    difference, default 200): occupancy gap beyond which balance
    overrides dependences. Both knobs are swept by the auto-tuner
    through [Clusteer.Configuration.params].

    Tie-breaking in the least-loaded selection rotates its scan start
    by the policy's decision count, so exact ties (equal votes, equal
    load) spread across clusters instead of all collapsing onto
    cluster 0; untied picks are unchanged.

    [topology] (normally injected by the harness from the machine
    configuration) adds one more tie-break level on non-uniform
    fabrics: among equally loaded candidates, prefer the cluster whose
    copies would travel the fewest hops
    ({!Clusteer_topo.Topology.distance}, each source fetched from its
    nearest resident cluster). On uniform fabrics — or when [topology]
    is omitted — the decision stream is bit-identical to the seed
    policy, and the path stays allocation-free either way.

    Registers introspection counters into [registry] (default
    {!Clusteer_obs.Counters.default}): [op.decisions],
    [op.balance_overrides], [op.steer_away], [op.stall_decisions] and
    the [op.vote_candidates] histogram (tied clusters per vote — a
    latency proxy for the serialized vote unit of §2.1). Counts are
    per consult; counters never influence steering. *)
