type t = {
  l1 : Cache.t;
  l2 : Cache.t;
  l1_hit : int;
  l2_hit : int;
  mem : int;
  prefetch : bool;
  line : int;
}

let create (cfg : Config.t) =
  {
    l1 = Cache.create cfg.Config.l1d;
    l2 = Cache.create cfg.Config.l2;
    l1_hit = cfg.Config.l1d.Config.hit_latency;
    l2_hit = cfg.Config.l2.Config.hit_latency;
    mem = cfg.Config.memory_latency;
    prefetch = cfg.Config.prefetch_next_line;
    line = cfg.Config.l1d.Config.line_bytes;
  }

let load_latency t ~addr =
  match Cache.access t.l1 ~addr ~write:false with
  | Cache.Hit -> t.l1_hit
  | Cache.Miss ->
      let lat =
        match Cache.access t.l2 ~addr ~write:false with
        | Cache.Hit -> t.l1_hit + t.l2_hit
        | Cache.Miss -> t.l1_hit + t.l2_hit + t.mem
      in
      (* Idealised next-line prefetch: fill quietly on a demand miss
         (always timely, no bandwidth cost, not a demand access). *)
      if t.prefetch then begin
        let next = addr + t.line in
        Cache.touch t.l2 ~addr:next;
        Cache.touch t.l1 ~addr:next
      end;
      lat

let store t ~addr =
  ignore (Cache.access t.l1 ~addr ~write:true);
  ignore (Cache.access t.l2 ~addr ~write:true)

let l1_resident t ~addr = Cache.probe t.l1 ~addr

let prewarm t ~base ~bytes =
  let line = 64 in
  let n = max 1 ((bytes + line - 1) / line) in
  for i = 0 to n - 1 do
    let addr = base + (i * line) in
    Cache.touch t.l2 ~addr;
    Cache.touch t.l1 ~addr
  done

let l1_hits t = Cache.hits t.l1
let l1_misses t = Cache.misses t.l1
let l2_hits t = Cache.hits t.l2
let l2_misses t = Cache.misses t.l2

let reset_stats t =
  Cache.reset_stats t.l1;
  Cache.reset_stats t.l2

let reset t =
  Cache.invalidate_all t.l1;
  Cache.invalidate_all t.l2;
  reset_stats t
