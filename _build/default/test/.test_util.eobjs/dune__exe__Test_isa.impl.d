test/test_isa.ml: Alcotest Annot Annot_io Array Block Clusteer_isa Filename Format Fun Opcode Program Reg String Sys Uop
