open Clusteer_ddg

type reservation = {
  machine : Machine.t;
  (* used.(cluster) : per slot-class growable usage counters by cycle *)
  used : Clusteer_util.Vec.t array array;
}

let class_index = function
  | Machine.Slot_int -> 0
  | Machine.Slot_fp -> 1
  | Machine.Slot_mem -> 2
  | Machine.Slot_move -> 3

let create_reservation machine =
  Machine.validate machine;
  {
    machine;
    used =
      Array.init machine.Machine.clusters (fun _ ->
          Array.init 4 (fun _ -> Clusteer_util.Vec.create ~default:0 ()));
  }

let earliest_free r ~cluster ~cls ~from =
  let vec = r.used.(cluster).(class_index cls) in
  let cap = Machine.slots r.machine cls in
  let rec scan cycle =
    if Clusteer_util.Vec.get vec cycle < cap then cycle else scan (cycle + 1)
  in
  scan (max 0 from)

let reserve r ~cluster ~cls ~cycle =
  let vec = r.used.(cluster).(class_index cls) in
  let cap = Machine.slots r.machine cls in
  let used = Clusteer_util.Vec.get vec cycle in
  if used >= cap then invalid_arg "Vliw.Schedule.reserve: slot full";
  Clusteer_util.Vec.set vec cycle (used + 1)

type entry = { node : int; cluster : int; cycle : int; finish : int }

type t = { entries : entry array; moves : int; length : int }

let ipc t =
  if t.length = 0 then 0.0
  else float_of_int (Array.length t.entries) /. float_of_int t.length

let validate t (g : Ddg.t) machine =
  if Array.length t.entries <> Ddg.node_count g then
    invalid_arg "Vliw.Schedule.validate: arity mismatch";
  Array.iteri
    (fun node e ->
      if e.node <> node then invalid_arg "Vliw.Schedule.validate: misindexed";
      if e.cluster < 0 || e.cluster >= machine.Machine.clusters then
        invalid_arg "Vliw.Schedule.validate: cluster out of range";
      let own_latency = Ddg.static_latency g.Ddg.uops.(node) in
      if e.finish < e.cycle + own_latency then
        invalid_arg "Vliw.Schedule.validate: finish before latency";
      List.iter
        (fun (edge : Ddg.edge) ->
          let p = t.entries.(edge.Ddg.src) in
          let comm =
            if p.cluster = e.cluster then 0 else machine.Machine.comm_latency
          in
          if e.cycle < p.finish + comm then
            invalid_arg
              (Printf.sprintf
                 "Vliw.Schedule.validate: node %d issues at %d before \
                  operand from %d ready at %d(+%d comm)"
                 node e.cycle edge.Ddg.src p.finish comm))
        g.Ddg.preds.(node))
    t.entries
