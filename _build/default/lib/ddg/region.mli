(** Compilation regions (superblocks).

    The software steering passes inspect "a bigger window of
    instructions" than the hardware can (paper §3.2): we form regions
    by growing traces of basic blocks along the statically likely path,
    the classic superblock construction. Each basic block belongs to
    exactly one region; the flattened micro-op sequence of a region is
    the scope over which a DDG is built and partitioned. *)

open Clusteer_isa

type t = {
  id : int;
  blocks : int array;  (** block ids along the likely path *)
  uops : Uop.t array;  (** flattened micro-ops, program order *)
}

val build :
  program:Program.t -> likely:(int -> int option) -> max_uops:int -> t list
(** [build ~program ~likely ~max_uops] covers the whole program with
    regions. [likely blk] gives the index (into the block's successor
    array) of the successor the profile considers most likely — [None]
    for a fifty-fifty branch, which terminates the region. Growth also
    stops at program exits, already-placed blocks, back-edges into the
    region, and at [max_uops] flattened micro-ops. *)

val find : t list -> uop_id:int -> t
(** Region containing a static micro-op. Raises [Not_found]. *)

val position : t -> uop_id:int -> int
(** Index of a micro-op inside the region's flattened sequence.
    Raises [Not_found]. *)
