lib/graphpart/wgraph.mli:
