open Clusteer_isa
open Clusteer_ddg

type t = {
  static_uops : int;
  regions : int;
  chains : int;
  mean_chain_length : float;
  max_chain_length : int;
  vc_population : int array;
  cross_vc_edges : int;
  intra_vc_edges : int;
}

let of_annot ~program ~likely ~annot ?(region_uops = 512) () =
  if annot.Annot.virtual_clusters <= 0 then
    invalid_arg "Diagnostics.of_annot: annotation has no virtual clusters";
  let regions = Region.build ~program ~likely ~max_uops:region_uops in
  let vc_population = Array.make annot.Annot.virtual_clusters 0 in
  Array.iter
    (fun vc -> if vc >= 0 then vc_population.(vc) <- vc_population.(vc) + 1)
    annot.Annot.vc_of;
  let chain_lengths =
    List.concat_map
      (fun region ->
        List.map List.length (Chains.chains_of_region annot region))
      regions
  in
  let chains = List.length chain_lengths in
  let total_len = List.fold_left ( + ) 0 chain_lengths in
  let cross, intra =
    List.fold_left
      (fun (cross, intra) region ->
        let g = Ddg.of_region region in
        Array.to_list g.Ddg.succs
        |> List.concat_map Fun.id
        |> List.fold_left
             (fun (cross, intra) (e : Ddg.edge) ->
               let vc_of node =
                 annot.Annot.vc_of.(region.Region.uops.(node).Uop.id)
               in
               if vc_of e.Ddg.src = vc_of e.Ddg.dst then (cross, intra + 1)
               else (cross + 1, intra))
             (cross, intra))
      (0, 0) regions
  in
  {
    static_uops = program.Program.uop_count;
    regions = List.length regions;
    chains;
    mean_chain_length =
      (if chains = 0 then 0.0 else float_of_int total_len /. float_of_int chains);
    max_chain_length = List.fold_left max 0 chain_lengths;
    vc_population;
    cross_vc_edges = cross;
    intra_vc_edges = intra;
  }

let to_json t =
  let module Json = Clusteer_obs.Json in
  Json.Obj
    [
      ("static_uops", Json.Int t.static_uops);
      ("regions", Json.Int t.regions);
      ("chains", Json.Int t.chains);
      ("mean_chain_length", Json.Float t.mean_chain_length);
      ("max_chain_length", Json.Int t.max_chain_length);
      ( "vc_population",
        Json.List
          (Array.to_list (Array.map (fun n -> Json.Int n) t.vc_population)) );
      ("cross_vc_edges", Json.Int t.cross_vc_edges);
      ("intra_vc_edges", Json.Int t.intra_vc_edges);
    ]

let codes = [ "CP001"; "CP002"; "CP003"; "CP004" ]

let findings t =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  Array.iteri
    (fun vc count ->
      if count = 0 then
        add (Diag.infof ~code:"CP001" "virtual cluster %d holds no uops" vc))
    t.vc_population;
  let nonzero = Array.to_list t.vc_population |> List.filter (fun n -> n > 0) in
  (match nonzero with
  | _ :: _ :: _ ->
      let lo = List.fold_left min max_int nonzero in
      let hi = List.fold_left max 0 nonzero in
      if hi > 4 * lo then
        add
          (Diag.infof ~code:"CP002"
             "vc population imbalance %d:%d exceeds 4:1" hi lo)
  | _ -> ());
  let total = t.cross_vc_edges + t.intra_vc_edges in
  if total > 0 && t.cross_vc_edges * 2 > total then
    add
      (Diag.infof ~code:"CP003"
         "%d of %d dependence edges cross virtual clusters (every crossing \
          is a potential copy)"
         t.cross_vc_edges total);
  if t.chains > 0 && t.mean_chain_length < 2.0 then
    add
      (Diag.infof ~code:"CP004"
         "mean chain length %.2f leaves little for the leader mechanism to \
          amortize"
         t.mean_chain_length);
  List.rev !diags

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%d static micro-ops in %d regions@,\
     %d chains, mean length %.1f, max %d@,\
     vc population: %a@,\
     dependence edges: %d intra-vc, %d cross-vc (%.0f%% cut)@]"
    t.static_uops t.regions t.chains t.mean_chain_length t.max_chain_length
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
       Format.pp_print_int)
    (Array.to_list t.vc_population)
    t.intra_vc_edges t.cross_vc_edges
    (let total = t.intra_vc_edges + t.cross_vc_edges in
     if total = 0 then 0.0
     else 100.0 *. float_of_int t.cross_vc_edges /. float_of_int total)
