lib/compiler/ob.ml: Annot Array Clusteer_ddg Clusteer_isa Ddg Estimate List Program Region Uop
