open Clusteer_ddg

(* The slack computation itself lives in Clusteer_ddg.Slack so the
   checker's PL005 pass verifies against the very function that
   produced the hints, not a reimplementation that could drift. *)
let compute ~program ~likely ?(region_uops = 512) ?(slack_threshold = 0) () =
  Slack.hints ~program ~likely ~region_uops ~slack_threshold ()
