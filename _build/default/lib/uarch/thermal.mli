(** First-order steady-state thermal estimate.

    Clustering is motivated by "power, thermal and complexity" (§1,
    citing Chaparro et al.'s thermal-aware clustered
    microarchitectures — [7] in the paper). This model turns a run's
    per-cluster activity into steady-state temperatures with the usual
    lumped-RC abstraction: each cluster dissipates its share of dynamic
    plus static power, and temperature is ambient plus thermal
    resistance times power. Units are normalized (energy units per
    cycle × K per unit), adequate for comparing steering schemes'
    hot-spot behaviour, not for absolute silicon numbers. *)

type t = {
  ambient : float;
  per_cluster : float array;  (** steady-state temperature per cluster *)
  hottest : int;
  spread : float;  (** hottest - coolest *)
}

val estimate :
  ?ambient:float ->
  ?resistance:float ->
  ?costs:Energy.costs ->
  clusters:int ->
  Stats.t ->
  t
(** Per-cluster power = (its dispatch share of dynamic energy + its
    share of static energy) / cycles. [ambient] defaults to 45.0,
    [resistance] to 2.0. *)
