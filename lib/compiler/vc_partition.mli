(** The paper's software partitioner (Figure 2): distribute DDG nodes
    into *virtual clusters* at compile time.

    Three steps per region:
    {ol
    {- {b Critical paths}: depth and height via two DDG traversals;
       criticality = depth + height (§4.2).}
    {- {b Partition into VCs}: top-down over the DDG; each instruction
       is priced in every VC via the static completion-time estimator
       and placed where it completes earliest. The contention term is
       scaled down for critical instructions (low slack), so critical
       dependence chains follow their producers into one VC even at
       the cost of imbalance — the behaviour §5.3 observes ("VC can
       send critical dependence chains to one single cluster ... at
       the expense of increasing workload imbalance").}
    {- {b Chains and chain leaders} are identified afterwards by
       {!Chains}.}}

    {2 Tunable knobs}

    The paper fixes the estimator's constants by hand; this module
    exposes them so the auto-tuner ({!Clusteer_tune.Param_space}) can
    sweep them. Every knob's default reproduces the paper:
    - [issue_width] (micro-ops/cycle, default 2.0): per-VC issue
      bandwidth assumed by the §4.2 completion-time estimator — the
      Table 2 per-cluster INT issue width.
    - [comm_latency] (cycles, default 1.0): estimated cost of a
      cross-VC operand, the Table 2 1-cycle point-to-point link.
    - [crit_min_scale] (dimensionless in \[0, 1\], default 0.15): the
      placement criticality weight — the contention-scale floor applied
      to zero-slack instructions. 0 makes critical chains follow their
      producers unconditionally; 1 disables criticality-aware placement
      altogether (every instruction priced purely on completion time).
    - [max_chain] (micro-ops, default 0 = unlimited): chain-length cap
      applied when marking leaders; see {!Chains}. *)

open Clusteer_isa

val assign_region :
  Clusteer_ddg.Ddg.t ->
  virtual_clusters:int ->
  ?issue_width:float ->
  ?comm_latency:float ->
  ?crit_min_scale:float ->
  unit ->
  int array
(** VC assignment (node -> vc id) for one region DDG. *)

val compile :
  program:Program.t ->
  likely:(int -> int option) ->
  virtual_clusters:int ->
  ?region_uops:int ->
  ?issue_width:float ->
  ?comm_latency:float ->
  ?crit_min_scale:float ->
  ?max_chain:int ->
  unit ->
  Annot.t
(** Whole-program hybrid annotation (scheme ["vc"]): VC ids plus chain
    leader marks, ready for the runtime mapper. *)
