test/test_steer.mli:
