lib/graphpart/partition.ml: Array Float Printf Wgraph
