lib/ddg/critical.ml: Array Ddg List
