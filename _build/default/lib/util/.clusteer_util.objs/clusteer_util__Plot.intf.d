lib/util/plot.mli:
