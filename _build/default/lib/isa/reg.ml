type cls = Int_class | Fp_class

type t = { cls : cls; idx : int }

let int idx =
  if idx < 0 then invalid_arg "Reg.int: negative index";
  { cls = Int_class; idx }

let fp idx =
  if idx < 0 then invalid_arg "Reg.fp: negative index";
  { cls = Fp_class; idx }

let encode ~nregs_per_class r =
  if r.idx < 0 || r.idx >= nregs_per_class then
    invalid_arg "Reg.encode: index out of range";
  match r.cls with
  | Int_class -> r.idx
  | Fp_class -> nregs_per_class + r.idx

let decode ~nregs_per_class code =
  if code < 0 || code >= 2 * nregs_per_class then
    invalid_arg "Reg.decode: code out of range";
  if code < nregs_per_class then { cls = Int_class; idx = code }
  else { cls = Fp_class; idx = code - nregs_per_class }

let equal a b = a.cls = b.cls && a.idx = b.idx

let compare a b =
  match (a.cls, b.cls) with
  | Int_class, Fp_class -> -1
  | Fp_class, Int_class -> 1
  | (Int_class, Int_class | Fp_class, Fp_class) -> Int.compare a.idx b.idx

let to_string r =
  match r.cls with
  | Int_class -> Printf.sprintf "r%d" r.idx
  | Fp_class -> Printf.sprintf "f%d" r.idx

let pp ppf r = Format.pp_print_string ppf (to_string r)
