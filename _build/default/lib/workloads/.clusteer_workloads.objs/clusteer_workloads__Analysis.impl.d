lib/workloads/analysis.ml: Clusteer_isa Clusteer_trace Dynuop Format Hashtbl Opcode Synth Tracegen Uop
