lib/harness/experiments.mli: Clusteer_uarch Clusteer_workloads Config Profile Runner
