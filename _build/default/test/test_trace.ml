(* Tests for clusteer_trace: branch models, memory models, trace
   generation determinism and CFG-walk correctness. *)

open Clusteer_isa
open Clusteer_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Branch models --------------------------------------------------- *)

let test_loop_model_pattern () =
  let st = Branch_model.make_state [| Branch_model.Loop 3 |] ~seed:1 in
  (* Loop 3: taken, taken, not-taken, repeating. *)
  let outcomes = List.init 9 (fun _ -> Branch_model.outcome st 0) in
  Alcotest.(check (list bool)) "loop pattern"
    [ true; true; false; true; true; false; true; true; false ]
    outcomes

let test_loop_trip_one_never_taken () =
  let st = Branch_model.make_state [| Branch_model.Loop 1 |] ~seed:1 in
  for _ = 1 to 5 do
    check_bool "trip 1 exits immediately" false (Branch_model.outcome st 0)
  done

let test_pattern_model_repeats () =
  let st =
    Branch_model.make_state [| Branch_model.Pattern [| true; false |] |] ~seed:1
  in
  Alcotest.(check (list bool)) "pattern"
    [ true; false; true; false ]
    (List.init 4 (fun _ -> Branch_model.outcome st 0))

let test_bernoulli_rate () =
  let st = Branch_model.make_state [| Branch_model.Bernoulli 0.8 |] ~seed:5 in
  let taken = ref 0 in
  for _ = 1 to 10_000 do
    if Branch_model.outcome st 0 then incr taken
  done;
  let rate = float_of_int !taken /. 10_000.0 in
  check_bool "rate near 0.8" true (rate > 0.77 && rate < 0.83)

let test_branch_reset_replays () =
  let st = Branch_model.make_state [| Branch_model.Bernoulli 0.5 |] ~seed:9 in
  let first = List.init 20 (fun _ -> Branch_model.outcome st 0) in
  Branch_model.reset st;
  let second = List.init 20 (fun _ -> Branch_model.outcome st 0) in
  Alcotest.(check (list bool)) "reset replays stream" first second

let test_branch_model_validation () =
  Alcotest.check_raises "bad loop"
    (Invalid_argument "Branch_model: loop trip count >= 1") (fun () ->
      ignore (Branch_model.make_state [| Branch_model.Loop 0 |] ~seed:1));
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Branch_model: probability range") (fun () ->
      ignore (Branch_model.make_state [| Branch_model.Bernoulli 1.5 |] ~seed:1))

(* ---- Memory models ---------------------------------------------------- *)

let test_strided_walk () =
  let st =
    Mem_model.make_state
      [| Mem_model.Strided { base = 1000; stride = 8; footprint = 32 } |]
      ~seed:1
  in
  let addrs = List.init 6 (fun _ -> Mem_model.next_address st 0) in
  Alcotest.(check (list int)) "wraps at footprint"
    [ 1000; 1008; 1016; 1024; 1000; 1008 ]
    addrs

let test_uniform_in_range () =
  let st =
    Mem_model.make_state
      [| Mem_model.Uniform { base = 4096; footprint = 8192; granule = 8 } |]
      ~seed:3
  in
  for _ = 1 to 1000 do
    let a = Mem_model.next_address st 0 in
    check_bool "in range" true (a >= 4096 && a < 4096 + 8192);
    check_int "aligned" 0 (a mod 8)
  done

let test_uniform_hot_set_locality () =
  let st =
    Mem_model.make_state
      [| Mem_model.Uniform { base = 0; footprint = 1 lsl 20; granule = 8 } |]
      ~seed:7
  in
  let hot = max 4096 ((1 lsl 20) / 16) in
  let in_hot = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Mem_model.next_address st 0 < hot then incr in_hot
  done;
  let rate = float_of_int !in_hot /. float_of_int n in
  check_bool "about 80% hot" true (rate > 0.75 && rate < 0.90)

let test_chase_in_range_and_serial () =
  let st =
    Mem_model.make_state [| Mem_model.Chase { base = 0; footprint = 4096 } |]
      ~seed:1
  in
  let a = Mem_model.next_address st 0 in
  let b = Mem_model.next_address st 0 in
  check_bool "in range" true (a >= 0 && a < 4096 && b >= 0 && b < 4096);
  check_bool "deterministic walk" true (a <> b)

let test_mem_reset_replays () =
  let st =
    Mem_model.make_state
      [| Mem_model.Chase { base = 0; footprint = 4096 } |]
      ~seed:1
  in
  let first = List.init 10 (fun _ -> Mem_model.next_address st 0) in
  Mem_model.reset st;
  let second = List.init 10 (fun _ -> Mem_model.next_address st 0) in
  Alcotest.(check (list int)) "reset replays chase" first second

let test_strided_negative_stride_wraps () =
  let st =
    Mem_model.make_state
      [| Mem_model.Strided { base = 100; stride = -8; footprint = 24 } |]
      ~seed:1
  in
  let addrs = List.init 4 (fun _ -> Mem_model.next_address st 0) in
  (* walks backward and wraps inside [base, base+footprint) offsets *)
  Alcotest.(check (list int)) "backward wrap" [ 100; 116; 108; 100 ] addrs

let test_mem_extent () =
  Alcotest.(check (pair int int)) "extent" (64, 128)
    (Mem_model.extent (Mem_model.Strided { base = 64; stride = 8; footprint = 128 }))

let test_mem_validation () =
  Alcotest.check_raises "zero stride" (Invalid_argument "Mem_model: zero stride")
    (fun () ->
      ignore
        (Mem_model.make_state
           [| Mem_model.Strided { base = 0; stride = 0; footprint = 8 } |]
           ~seed:1))

(* ---- Tracegen --------------------------------------------------------- *)

(* A two-block loop: body (3 alus) -> latch with Loop(3) branch. *)
let loop_workload () =
  let b = Program.Builder.create ~name:"loop" ~nregs_per_class:8 () in
  let m = Program.Builder.branch_model b in
  let body = Program.Builder.reserve_block b in
  let exit_ = Program.Builder.reserve_block b in
  (* let-bound so micro-op ids follow program order (list literals
     evaluate right to left). *)
  let u0 = Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 0) () in
  let u1 =
    Program.Builder.uop b Opcode.Int_alu ~dst:(Reg.int 1) ~srcs:[| Reg.int 0 |] ()
  in
  let u2 =
    Program.Builder.uop b Opcode.Branch ~srcs:[| Reg.int 1 |] ~branch_ref:m ()
  in
  let uops = [ u0; u1; u2 ] in
  Program.Builder.define_block b body uops ~succs:[ exit_; body ];
  Program.Builder.define_block b exit_ [] ~succs:[];
  let program = Program.Builder.finish b ~entry:body in
  (program, [| Branch_model.Loop 3 |])

let test_tracegen_loop_walk () =
  let program, branches = loop_workload () in
  let gen = Tracegen.create ~program ~branches ~streams:[||] ~seed:1 in
  (* Loop(3): the block runs 3 times, then exits and wraps to entry.
     Sequence of static ids: 0 1 2 | 0 1 2 | 0 1 2 | (exit->restart) 0 1 2 *)
  let ids = Array.map Dynuop.static_id (Tracegen.take gen 12) in
  Alcotest.(check (array int)) "loop ids"
    [| 0; 1; 2; 0; 1; 2; 0; 1; 2; 0; 1; 2 |]
    ids

let test_tracegen_branch_outcomes () =
  let program, branches = loop_workload () in
  let gen = Tracegen.create ~program ~branches ~streams:[||] ~seed:1 in
  let duops = Tracegen.take gen 9 in
  let outcomes =
    Array.to_list duops
    |> List.filter (fun d -> Uop.is_branch d.Dynuop.suop)
    |> List.map (fun d -> d.Dynuop.taken)
  in
  Alcotest.(check (list bool)) "taken taken not-taken"
    [ true; true; false ] outcomes

let test_tracegen_determinism () =
  let program, branches = loop_workload () in
  let g1 = Tracegen.create ~program ~branches ~streams:[||] ~seed:5 in
  let g2 = Tracegen.create ~program ~branches ~streams:[||] ~seed:5 in
  let t1 = Tracegen.take g1 100 and t2 = Tracegen.take g2 100 in
  Array.iteri
    (fun i d ->
      check_int "same id" (Dynuop.static_id d) (Dynuop.static_id t2.(i));
      check_bool "same outcome" d.Dynuop.taken t2.(i).Dynuop.taken)
    t1

let test_tracegen_seq_numbers_dense () =
  let program, branches = loop_workload () in
  let gen = Tracegen.create ~program ~branches ~streams:[||] ~seed:1 in
  let duops = Tracegen.take gen 50 in
  Array.iteri (fun i d -> check_int "dense seq" i d.Dynuop.seq) duops;
  check_int "generated" 50 (Tracegen.generated gen)

let test_tracegen_memory_addresses () =
  let b = Program.Builder.create ~name:"mem" ~nregs_per_class:8 () in
  let s = Program.Builder.stream b in
  let load =
    Program.Builder.uop b Opcode.Load ~dst:(Reg.int 0) ~srcs:[| Reg.int 1 |]
      ~stream:s ()
  in
  let blk = Program.Builder.add_block b [ load ] ~succs:[] in
  let program = Program.Builder.finish b ~entry:blk in
  let streams = [| Mem_model.Strided { base = 0; stride = 8; footprint = 24 } |] in
  let gen = Tracegen.create ~program ~branches:[||] ~streams ~seed:1 in
  let addrs = Array.map (fun d -> d.Dynuop.addr) (Tracegen.take gen 4) in
  Alcotest.(check (array int)) "strided addrs" [| 0; 8; 16; 0 |] addrs

let test_tracegen_model_arity_check () =
  let program, _ = loop_workload () in
  Alcotest.check_raises "missing branch models"
    (Invalid_argument "Tracegen.create: branch model arity mismatch") (fun () ->
      ignore (Tracegen.create ~program ~branches:[||] ~streams:[||] ~seed:1))

let test_tracegen_no_wrap_periodicity () =
  (* With a Bernoulli branch the wrapped walk must NOT repeat the same
     outcome sequence (models keep rolling across restarts). *)
  let b = Program.Builder.create ~name:"bern" ~nregs_per_class:4 () in
  let m = Program.Builder.branch_model b in
  let blk = Program.Builder.reserve_block b in
  let exit_ = Program.Builder.reserve_block b in
  let br =
    Program.Builder.uop b Opcode.Branch ~srcs:[| Reg.int 0 |] ~branch_ref:m ()
  in
  Program.Builder.define_block b blk [ br ] ~succs:[ exit_; exit_ ];
  Program.Builder.define_block b exit_ [] ~succs:[];
  let program = Program.Builder.finish b ~entry:blk in
  let gen =
    Tracegen.create ~program ~branches:[| Branch_model.Bernoulli 0.5 |]
      ~streams:[||] ~seed:3
  in
  let outcomes = Array.map (fun d -> d.Dynuop.taken) (Tracegen.take gen 64) in
  let first_half = Array.sub outcomes 0 32 in
  let second_half = Array.sub outcomes 32 32 in
  check_bool "not periodic" true (first_half <> second_half)

let () =
  Alcotest.run "clusteer_trace"
    [
      ( "branch-models",
        [
          Alcotest.test_case "loop pattern" `Quick test_loop_model_pattern;
          Alcotest.test_case "loop trip one" `Quick test_loop_trip_one_never_taken;
          Alcotest.test_case "pattern repeats" `Quick test_pattern_model_repeats;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
          Alcotest.test_case "reset replays" `Quick test_branch_reset_replays;
          Alcotest.test_case "validation" `Quick test_branch_model_validation;
        ] );
      ( "mem-models",
        [
          Alcotest.test_case "strided walk" `Quick test_strided_walk;
          Alcotest.test_case "uniform range" `Quick test_uniform_in_range;
          Alcotest.test_case "hot-set locality" `Quick test_uniform_hot_set_locality;
          Alcotest.test_case "chase" `Quick test_chase_in_range_and_serial;
          Alcotest.test_case "reset replays" `Quick test_mem_reset_replays;
          Alcotest.test_case "negative stride" `Quick test_strided_negative_stride_wraps;
          Alcotest.test_case "extent" `Quick test_mem_extent;
          Alcotest.test_case "validation" `Quick test_mem_validation;
        ] );
      ( "tracegen",
        [
          Alcotest.test_case "loop walk" `Quick test_tracegen_loop_walk;
          Alcotest.test_case "branch outcomes" `Quick test_tracegen_branch_outcomes;
          Alcotest.test_case "determinism" `Quick test_tracegen_determinism;
          Alcotest.test_case "dense seq" `Quick test_tracegen_seq_numbers_dense;
          Alcotest.test_case "memory addresses" `Quick test_tracegen_memory_addresses;
          Alcotest.test_case "arity check" `Quick test_tracegen_model_arity_check;
          Alcotest.test_case "no wrap periodicity" `Quick test_tracegen_no_wrap_periodicity;
        ] );
    ]
