lib/compiler/crit_hints.ml: Array Clusteer_ddg Clusteer_isa Critical Ddg List Program Region Uop
