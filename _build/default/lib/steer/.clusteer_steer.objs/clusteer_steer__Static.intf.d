lib/steer/static.mli: Annot Clusteer_isa Clusteer_uarch
