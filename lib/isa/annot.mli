(** Steering annotations: the software half of the hybrid interface.

    The paper extends the x86 instruction set so the compiler can pass,
    per micro-op, a virtual-cluster id and a chain-leader mark to the
    hardware (Section 4.2). Static schemes (OB, RHOP) instead pass a
    fixed physical-cluster assignment. An [Annot.t] is that side channel:
    dense per-static-uop arrays, produced by a compiler pass and read by
    the runtime steering policy. Programs themselves stay immutable, so
    several annotations for the same program can coexist. *)

type t = {
  scheme : string;  (** producing pass, e.g. ["vc"], ["rhop"], ["ob"] *)
  virtual_clusters : int;  (** number of VCs; [0] when the scheme has none *)
  vc_of : int array;  (** uop id -> virtual cluster id, [-1] = unassigned *)
  leader : bool array;  (** uop id -> chain-leader mark (Fig. 3) *)
  cluster_of : int array;  (** uop id -> static physical cluster, [-1] = none *)
}

val none : uop_count:int -> t
(** Empty annotation for hardware-only schemes (OP, one-cluster). *)

val create_virtual :
  scheme:string -> virtual_clusters:int -> uop_count:int -> t
(** All-unassigned VC annotation to be filled by a partitioner. *)

val create_static : scheme:string -> uop_count:int -> t
(** All-unassigned physical annotation to be filled by OB/RHOP. *)

val copy : t -> t
(** Deep copy (fresh arrays). Used by the analyzer's mutation harness
    to corrupt an annotation without touching the original. *)

val validate : t -> clusters:int -> unit
(** Check internal consistency: vc ids within [virtual_clusters], static
    clusters within [clusters], leaders only on VC-assigned micro-ops.
    Raises [Invalid_argument] on violation. *)

val chain_count : t -> int
(** Number of chain leaders (= number of chains). *)
