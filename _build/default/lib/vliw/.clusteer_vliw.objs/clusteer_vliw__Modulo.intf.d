lib/vliw/modulo.mli: Clusteer_isa Machine Uop
