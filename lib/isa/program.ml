type t = {
  name : string;
  blocks : Block.t array;
  entry : int;
  nregs_per_class : int;
  uop_count : int;
  stream_count : int;
  branch_model_count : int;
  uop_index : (int * int) array;  (* uop id -> (block id, position) *)
}

let uop t id =
  let blk, pos = t.uop_index.(id) in
  t.blocks.(blk).Block.uops.(pos)

let block_of_uop t id = fst t.uop_index.(id)
let index_in_block t id = snd t.uop_index.(id)

let iter_uops t f =
  Array.iter (fun blk -> Array.iter f blk.Block.uops) t.blocks

let static_size t = t.uop_count

let pp ppf t =
  Format.fprintf ppf "@[<v2>program %s (entry %d, %d uops):@,%a@]" t.name
    t.entry t.uop_count
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Block.pp)
    (Array.to_list t.blocks)

let of_blocks_unchecked ?(name = "unchecked") ~nregs_per_class
    ?(stream_count = 0) ?(branch_model_count = 0) ~blocks ~entry () =
  let max_id = ref (-1) in
  Array.iter
    (fun blk ->
      Array.iter
        (fun (u : Uop.t) -> if u.Uop.id > !max_id then max_id := u.Uop.id)
        blk.Block.uops)
    blocks;
  let uop_count = !max_id + 1 in
  let uop_index = Array.make uop_count (-1, -1) in
  Array.iter
    (fun blk ->
      Array.iteri
        (fun pos (u : Uop.t) ->
          if u.Uop.id >= 0 then uop_index.(u.Uop.id) <- (blk.Block.id, pos))
        blk.Block.uops)
    blocks;
  {
    name;
    blocks;
    entry;
    nregs_per_class;
    uop_count;
    stream_count;
    branch_model_count;
    uop_index;
  }

module Builder = struct
  type program = t

  type b = {
    name : string;
    nregs_per_class : int;
    mutable next_uop : int;
    mutable next_stream : int;
    mutable next_branch : int;
    mutable blocks : (Uop.t list * int list) option array;
    mutable nblocks : int;
  }

  let create ?(name = "anon") ~nregs_per_class () =
    if nregs_per_class <= 0 then
      invalid_arg "Program.Builder.create: nregs_per_class must be positive";
    {
      name;
      nregs_per_class;
      next_uop = 0;
      next_stream = 0;
      next_branch = 0;
      blocks = Array.make 8 None;
      nblocks = 0;
    }

  let stream b =
    let id = b.next_stream in
    b.next_stream <- id + 1;
    id

  let branch_model b =
    let id = b.next_branch in
    b.next_branch <- id + 1;
    id

  let check_reg b (r : Reg.t) =
    if r.Reg.idx >= b.nregs_per_class then
      invalid_arg
        (Printf.sprintf "Program.Builder: register %s out of budget (%d)"
           (Reg.to_string r) b.nregs_per_class)

  let uop b opcode ?dst ?(srcs = [||]) ?stream ?branch_ref () =
    Option.iter (check_reg b) dst;
    Array.iter (check_reg b) srcs;
    (match stream with
    | Some s when s < 0 || s >= b.next_stream ->
        invalid_arg "Program.Builder.uop: unknown stream"
    | _ -> ());
    (match branch_ref with
    | Some r when r < 0 || r >= b.next_branch ->
        invalid_arg "Program.Builder.uop: unknown branch model"
    | _ -> ());
    let id = b.next_uop in
    b.next_uop <- id + 1;
    Uop.make ~id ~opcode ?dst ~srcs ?stream:(Option.map Fun.id stream)
      ?branch_ref ()

  let reserve_block b =
    if b.nblocks = Array.length b.blocks then begin
      let grown = Array.make (2 * b.nblocks) None in
      Array.blit b.blocks 0 grown 0 b.nblocks;
      b.blocks <- grown
    end;
    let id = b.nblocks in
    b.nblocks <- id + 1;
    id

  let define_block b id uops ~succs =
    if id < 0 || id >= b.nblocks then
      invalid_arg "Program.Builder.define_block: unknown block id";
    (match b.blocks.(id) with
    | Some _ -> invalid_arg "Program.Builder.define_block: already defined"
    | None -> ());
    b.blocks.(id) <- Some (uops, succs)

  let add_block b uops ~succs =
    let id = reserve_block b in
    define_block b id uops ~succs;
    id

  let finish b ~entry =
    if entry < 0 || entry >= b.nblocks then
      invalid_arg "Program.Builder.finish: entry out of range";
    let placed = Array.make b.next_uop false in
    let blocks =
      Array.init b.nblocks (fun id ->
          match b.blocks.(id) with
          | None ->
              invalid_arg
                (Printf.sprintf "Program.Builder.finish: block %d undefined" id)
          | Some (uops, succs) ->
              List.iter
                (fun (u : Uop.t) ->
                  if u.Uop.id < 0 || u.Uop.id >= b.next_uop then
                    invalid_arg "Program.Builder.finish: foreign micro-op";
                  if placed.(u.Uop.id) then
                    invalid_arg
                      (Printf.sprintf
                         "Program.Builder.finish: micro-op %d placed twice"
                         u.Uop.id);
                  placed.(u.Uop.id) <- true)
                uops;
              List.iter
                (fun s ->
                  if s < 0 || s >= b.nblocks then
                    invalid_arg
                      (Printf.sprintf
                         "Program.Builder.finish: successor %d out of range" s))
                succs;
              Block.make ~id ~uops:(Array.of_list uops)
                ~succs:(Array.of_list succs))
    in
    Array.iteri
      (fun id seen ->
        if not seen then
          invalid_arg
            (Printf.sprintf "Program.Builder.finish: micro-op %d never placed"
               id))
      placed;
    let uop_index = Array.make b.next_uop (-1, -1) in
    Array.iter
      (fun blk ->
        Array.iteri
          (fun pos (u : Uop.t) -> uop_index.(u.Uop.id) <- (blk.Block.id, pos))
          blk.Block.uops)
      blocks;
    {
      name = b.name;
      blocks;
      entry;
      nregs_per_class = b.nregs_per_class;
      uop_count = b.next_uop;
      stream_count = b.next_stream;
      branch_model_count = b.next_branch;
      uop_index;
    }
end
