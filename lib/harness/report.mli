(** Plot-ready artifact emission: CSV data plus gnuplot scripts that
    recreate the paper's figures from a sweep's results. Run
    [gnuplot <name>.gp] in the output directory to get PNGs. *)

val write_slowdown_figure :
  dir:string -> name:string -> Experiments.slowdown_figure -> string list
(** Write [<name>.csv] and [<name>.gp] (clustered bar chart of
    slowdowns vs OP, one group per benchmark plus the averages).
    Returns the paths written. *)

val write_scatter_figure :
  dir:string -> Experiments.scatter_figure -> string list
(** Write the six Figure-6 panels: [fig6_vs_{ob,rhop,op}.csv] and a
    single [fig6.gp] producing the 2x3 panel grid. Returns the paths
    written. *)

val write_interval_series :
  dir:string ->
  name:string ->
  clusters:int ->
  Clusteer_obs.Interval.sample list ->
  string
(** Write a run's per-interval telemetry (IPC, copy rate, stall
    breakdown, per-cluster dispatch share) as [<name>_intervals.csv] —
    the per-interval series that rides alongside the paper tables.
    Returns the path written. *)
