open Profile

let mk name suite seed ~fp ~mem ~ilp ~chain ~fkb ~stride ~chase ~loops ~bs
    ~trip ~hard ~phases =
  {
    name;
    suite;
    seed;
    fp_ratio = fp;
    mem_ratio = mem;
    ilp;
    chain_len = chain;
    footprint_kb = fkb;
    stride_frac = stride;
    chase_frac = chase;
    loops;
    block_size = bs;
    loop_trip = trip;
    hard_branch_frac = hard;
    phases;
  }

let int_point name seed ~mem ~ilp ~chain ~fkb ~stride ~chase ~bs ~trip ~hard
    ~phases ?(fp = 0.02) ?(loops = 3) () =
  mk name Spec_int seed ~fp ~mem ~ilp ~chain ~fkb ~stride ~chase ~loops ~bs
    ~trip ~hard ~phases

let fp_point name seed ~fp ~mem ~ilp ~chain ~fkb ~stride ~chase ~bs ~trip
    ~hard ~phases ?(loops = 3) () =
  mk name Spec_fp seed ~fp ~mem ~ilp ~chain ~fkb ~stride ~chase ~loops ~bs
    ~trip ~hard ~phases

let gzip i =
  int_point
    (Printf.sprintf "164.gzip-%d" i)
    (1640 + i) ~mem:0.25 ~ilp:4 ~chain:5 ~fkb:(160 + (i * 24)) ~stride:0.5
    ~chase:0.0 ~bs:8 ~trip:20 ~hard:0.12 ~phases:2 ()

let vpr i =
  int_point
    (Printf.sprintf "175.vpr-%d" i)
    (1750 + i) ~mem:0.30 ~ilp:3 ~chain:7 ~fkb:256 ~stride:0.2 ~chase:0.2 ~bs:7
    ~trip:10 ~hard:0.25 ~phases:2 ()

let gcc i =
  int_point
    (Printf.sprintf "176.gcc-%d" i)
    (1760 + i) ~mem:0.30 ~ilp:3 ~chain:5 ~fkb:512 ~stride:0.2 ~chase:0.1
    ~bs:6 ~trip:6 ~hard:0.30 ~phases:2 ~loops:4 ()

let eon i =
  int_point
    (Printf.sprintf "252.eon-%d" i)
    (2520 + i) ~mem:0.30 ~ilp:4 ~chain:6 ~fkb:128 ~stride:0.4 ~chase:0.0 ~bs:9
    ~trip:12 ~hard:0.10 ~phases:2 ~fp:0.20 ()

let vortex i =
  int_point
    (Printf.sprintf "255.vortex-%d" i)
    (2550 + i) ~mem:0.40 ~ilp:3 ~chain:6 ~fkb:512 ~stride:0.3 ~chase:0.1
    ~bs:7 ~trip:10 ~hard:0.18 ~phases:2 ()

let bzip2 i =
  int_point
    (Printf.sprintf "256.bzip2-%d" i)
    (2560 + i) ~mem:0.30 ~ilp:4 ~chain:6 ~fkb:512 ~stride:0.5 ~chase:0.0
    ~bs:8 ~trip:16 ~hard:0.15 ~phases:2 ()

let art i =
  fp_point
    (Printf.sprintf "179.art-%d" i)
    (1790 + i) ~fp:0.50 ~mem:0.40 ~ilp:2 ~chain:10 ~fkb:1024 ~stride:0.7
    ~chase:0.0 ~bs:10 ~trip:30 ~hard:0.08 ~phases:2 ()

let spec_int =
  List.concat
    [
      List.init 5 (fun i -> gzip (i + 1));
      List.init 2 (fun i -> vpr (i + 1));
      List.init 5 (fun i -> gcc (i + 1));
      [
        int_point "181.mcf" 181 ~mem:0.45 ~ilp:3 ~chain:8 ~fkb:4096 ~stride:0.1
          ~chase:0.35 ~bs:7 ~trip:8 ~hard:0.25 ~phases:3 ();
        int_point "186.crafty" 186 ~mem:0.25 ~ilp:5 ~chain:5 ~fkb:256
          ~stride:0.3 ~chase:0.0 ~bs:7 ~trip:10 ~hard:0.20 ~phases:3 ();
        int_point "197.parser" 197 ~mem:0.35 ~ilp:3 ~chain:6 ~fkb:384
          ~stride:0.2 ~chase:0.2 ~bs:6 ~trip:8 ~hard:0.28 ~phases:3 ();
      ];
      List.init 3 (fun i -> eon (i + 1));
      [
        int_point "253.perlbmk" 253 ~mem:0.35 ~ilp:3 ~chain:6 ~fkb:384
          ~stride:0.25 ~chase:0.15 ~bs:6 ~trip:6 ~hard:0.30 ~phases:3 ();
        int_point "254.gap" 254 ~mem:0.30 ~ilp:4 ~chain:6 ~fkb:384 ~stride:0.4
          ~chase:0.0 ~bs:8 ~trip:14 ~hard:0.15 ~phases:3 ();
      ];
      List.init 2 (fun i -> vortex (i + 1));
      List.init 3 (fun i -> bzip2 (i + 1));
      [
        int_point "300.twolf" 300 ~mem:0.35 ~ilp:3 ~chain:7 ~fkb:256
          ~stride:0.2 ~chase:0.2 ~bs:7 ~trip:10 ~hard:0.25 ~phases:3 ();
      ];
    ]

let spec_fp =
  List.concat
    [
      [
        fp_point "168.wupwise" 168 ~fp:0.55 ~mem:0.30 ~ilp:5 ~chain:9 ~fkb:768
          ~stride:0.8 ~chase:0.0 ~bs:12 ~trip:40 ~hard:0.03 ~phases:3 ();
        fp_point "171.swim" 171 ~fp:0.60 ~mem:0.35 ~ilp:6 ~chain:8 ~fkb:1024
          ~stride:0.9 ~chase:0.0 ~bs:14 ~trip:50 ~hard:0.02 ~phases:3 ();
        fp_point "173.applu" 173 ~fp:0.60 ~mem:0.35 ~ilp:5 ~chain:10 ~fkb:1024
          ~stride:0.85 ~chase:0.0 ~bs:12 ~trip:40 ~hard:0.03 ~phases:3 ();
        fp_point "177.mesa" 177 ~fp:0.40 ~mem:0.30 ~ilp:4 ~chain:7 ~fkb:256
          ~stride:0.5 ~chase:0.0 ~bs:9 ~trip:15 ~hard:0.12 ~phases:3 ();
        fp_point "178.galgel" 178 ~fp:0.65 ~mem:0.30 ~ilp:6 ~chain:12 ~fkb:192
          ~stride:0.9 ~chase:0.0 ~bs:12 ~trip:30 ~hard:0.04 ~phases:3 ();
      ];
      List.init 2 (fun i -> art (i + 1));
      [
        fp_point "187.facerec" 187 ~fp:0.55 ~mem:0.30 ~ilp:4 ~chain:8 ~fkb:768
          ~stride:0.7 ~chase:0.0 ~bs:10 ~trip:25 ~hard:0.06 ~phases:3 ();
        fp_point "183.equake" 183 ~fp:0.50 ~mem:0.40 ~ilp:3 ~chain:8 ~fkb:1024
          ~stride:0.4 ~chase:0.2 ~bs:10 ~trip:20 ~hard:0.08 ~phases:3 ();
        fp_point "188.ammp" 188 ~fp:0.50 ~mem:0.40 ~ilp:3 ~chain:9 ~fkb:768
          ~stride:0.3 ~chase:0.2 ~bs:10 ~trip:20 ~hard:0.10 ~phases:3 ();
        fp_point "189.lucas" 189 ~fp:0.60 ~mem:0.30 ~ilp:4 ~chain:10 ~fkb:1024
          ~stride:0.8 ~chase:0.0 ~bs:12 ~trip:40 ~hard:0.03 ~phases:3 ();
        fp_point "191.fma3d" 191 ~fp:0.55 ~mem:0.35 ~ilp:4 ~chain:9 ~fkb:768
          ~stride:0.6 ~chase:0.0 ~bs:11 ~trip:25 ~hard:0.07 ~phases:3 ();
        fp_point "200.sixtrack" 200 ~fp:0.60 ~mem:0.25 ~ilp:5 ~chain:11
          ~fkb:512 ~stride:0.7 ~chase:0.0 ~bs:12 ~trip:30 ~hard:0.05 ~phases:3
          ();
        fp_point "301.apsi" 301 ~fp:0.55 ~mem:0.30 ~ilp:5 ~chain:9 ~fkb:512
          ~stride:0.7 ~chase:0.0 ~bs:11 ~trip:25 ~hard:0.05 ~phases:3 ();
      ];
    ]

let all = spec_int @ spec_fp

let find name =
  let matches (p : Profile.t) =
    String.equal p.Profile.name name
    || String.length p.Profile.name > String.length name
       && String.equal
            (String.sub p.Profile.name
               (String.length p.Profile.name - String.length name)
               (String.length name))
            name
  in
  match List.find_opt matches all with
  | Some p -> p
  | None -> raise Not_found
