open Clusteer_isa
open Clusteer_trace
module Rng = Clusteer_util.Rng

type shape =
  | Fanout of { producers : int; consumers : int }
  | Phase_flip of { period : int }
  | Copy_storm of { chains : int; stride : int }

let validate = function
  | Fanout { producers; consumers } ->
      if producers < 1 || producers > 12 then
        Error "Fanout: 1 <= producers <= 12"
      else if consumers < 1 || consumers > 24 then
        Error "Fanout: 1 <= consumers <= 24"
      else Ok ()
  | Phase_flip { period } ->
      if period < 1 || period > 4096 then Error "Phase_flip: 1 <= period <= 4096"
      else Ok ()
  | Copy_storm { chains; stride } ->
      if chains < 2 || chains > 16 then Error "Copy_storm: 2 <= chains <= 16"
      else if stride < 1 || stride >= chains then
        Error "Copy_storm: 1 <= stride < chains"
      else Ok ()

let name = function
  | Fanout { producers; consumers } ->
      Printf.sprintf "adv.fanout%dx%d" producers consumers
  | Phase_flip { period } -> Printf.sprintf "adv.flip%d" period
  | Copy_storm { chains; stride } ->
      Printf.sprintf "adv.storm%dx%d" chains stride

(* Descriptive metadata only, mirroring [Kernels.meta]: adversarial
   programs are explicit Builder programs, not re-synthesizable. *)
let meta name ~fp ~ilp ~chain =
  {
    Profile.name;
    suite = (if fp > 0.3 then Profile.Spec_fp else Profile.Spec_int);
    seed = 1;
    fp_ratio = fp;
    mem_ratio = 0.0;
    ilp;
    chain_len = chain;
    footprint_kb = 4;
    stride_frac = 0.5;
    chase_frac = 0.0;
    loops = 1;
    block_size = 8;
    loop_trip = 32;
    hard_branch_frac = 0.0;
    phases = 1;
  }

(* Single-nest scaffold, shared with [Kernels.loop_kernel]'s shape:
   induction counter + body + back-edge. *)
let loop_program ~name ~meta:profile ~iters ~body =
  let b = Program.Builder.create ~name ~nregs_per_class:64 () in
  let loop_model = Program.Builder.branch_model b in
  let blk = Program.Builder.reserve_block b in
  let exit_ = Program.Builder.reserve_block b in
  let ctr = Reg.int 32 in
  let ctr_update =
    Program.Builder.uop b Opcode.Int_alu ~dst:ctr ~srcs:[| ctr |] ()
  in
  let branch =
    Program.Builder.uop b Opcode.Branch ~srcs:[| ctr |] ~branch_ref:loop_model
      ()
  in
  let uops = (ctr_update :: body b) @ [ branch ] in
  Program.Builder.define_block b blk uops ~succs:[ exit_; blk ];
  Program.Builder.define_block b exit_ [] ~succs:[];
  let program = Program.Builder.finish b ~entry:blk in
  {
    Synth.profile;
    program;
    branches = [| Branch_model.Loop iters |];
    streams = [||];
    likely = (fun id -> if id = blk then Some 1 else None);
  }

let fanout ~producers ~consumers =
  loop_program
    ~name:(Printf.sprintf "adv-fanout%dx%d" producers consumers)
    ~meta:
      (meta
         (Printf.sprintf "adv.fanout%dx%d" producers consumers)
         ~fp:0.0 ~ilp:consumers ~chain:1)
    ~iters:512
    ~body:(fun b ->
      (* Hot producers r1..rP, each a 1-deep self-recurrence so the
         value is redefined (and re-communicated) every iteration. *)
      let prods =
        List.init producers (fun i ->
            let r = Reg.int (1 + i) in
            Program.Builder.uop b Opcode.Int_alu ~dst:r ~srcs:[| r |] ())
      in
      (* Independent consumers, each reading two producers round-robin:
         a maximally wide DDG whose every micro-op depends on the hot
         values — each mis-steered consumer is a copy. *)
      let cons =
        List.init consumers (fun k ->
            let s1 = Reg.int (1 + (k mod producers)) in
            let s2 = Reg.int (1 + ((k + 1) mod producers)) in
            Program.Builder.uop b Opcode.Int_alu
              ~dst:(Reg.int (33 + k))
              ~srcs:[| s1; s2 |] ())
      in
      prods @ cons)

(* Two alternating loop nests: a wide independent integer phase and a
   serial FP-chain phase, each [period] iterations. The trace
   generator falls out of nest 1 into nest 2 and restarts at the
   entry after nest 2, so the phases flip forever. *)
let phase_flip ~period =
  let pname = Printf.sprintf "adv-flip%d" period in
  let b = Program.Builder.create ~name:pname ~nregs_per_class:64 () in
  let model1 = Program.Builder.branch_model b in
  let model2 = Program.Builder.branch_model b in
  let blk1 = Program.Builder.reserve_block b in
  let blk2 = Program.Builder.reserve_block b in
  let exit_ = Program.Builder.reserve_block b in
  (* Phase A: six independent integer recurrences — wide, balanced,
     rewards spreading across clusters. *)
  let ctr1 = Reg.int 32 in
  let wide =
    List.init 6 (fun i ->
        let r = Reg.int (1 + i) in
        Program.Builder.uop b Opcode.Int_alu ~dst:r ~srcs:[| r |] ())
  in
  let uops1 =
    (Program.Builder.uop b Opcode.Int_alu ~dst:ctr1 ~srcs:[| ctr1 |] ()
     :: wide)
    @ [
        Program.Builder.uop b Opcode.Branch ~srcs:[| ctr1 |]
          ~branch_ref:model1 ();
      ]
  in
  Program.Builder.define_block b blk1 uops1 ~succs:[ blk2; blk1 ];
  (* Phase B: one serial FP chain — wants exactly one cluster; every
     remap the mapper learned in phase A is now wrong. *)
  let ctr2 = Reg.int 33 in
  let chain =
    List.init 4 (fun _ ->
        Program.Builder.uop b Opcode.Fp_add ~dst:(Reg.fp 1)
          ~srcs:[| Reg.fp 1; Reg.fp 1 |] ())
  in
  let uops2 =
    (Program.Builder.uop b Opcode.Int_alu ~dst:ctr2 ~srcs:[| ctr2 |] ()
     :: chain)
    @ [
        Program.Builder.uop b Opcode.Branch ~srcs:[| ctr2 |]
          ~branch_ref:model2 ();
      ]
  in
  Program.Builder.define_block b blk2 uops2 ~succs:[ exit_; blk2 ];
  Program.Builder.define_block b exit_ [] ~succs:[];
  let program = Program.Builder.finish b ~entry:blk1 in
  {
    Synth.profile =
      meta (Printf.sprintf "adv.flip%d" period) ~fp:0.4 ~ilp:6 ~chain:4;
    program;
    branches = [| Branch_model.Loop period; Branch_model.Loop period |];
    streams = [||];
    likely =
      (fun id ->
        if id = blk1 || id = blk2 then Some 1 else None);
  }

let copy_storm ~chains ~stride =
  loop_program
    ~name:(Printf.sprintf "adv-storm%dx%d" chains stride)
    ~meta:
      (meta
         (Printf.sprintf "adv.storm%dx%d" chains stride)
         ~fp:0.0 ~ilp:chains ~chain:64)
    ~iters:1024
    ~body:(fun b ->
      (* chain i: r_i <- r_i + r_{(i+stride) mod chains}. Each chain is
         serial (load balancing must spread them), yet every link reads
         a neighbouring chain's accumulator — one cross-cluster copy
         per chain per iteration under any spread placement. *)
      List.init chains (fun i ->
          let self = Reg.int (1 + i) in
          let other = Reg.int (1 + ((i + stride) mod chains)) in
          Program.Builder.uop b Opcode.Int_alu ~dst:self
            ~srcs:[| self; other |] ()))

let synth shape =
  (match validate shape with Ok () -> () | Error m -> invalid_arg m);
  match shape with
  | Fanout { producers; consumers } -> fanout ~producers ~consumers
  | Phase_flip { period } -> phase_flip ~period
  | Copy_storm { chains; stride } -> copy_storm ~chains ~stride

let of_seed seed =
  let rng = Rng.create seed in
  match Rng.int rng 3 with
  | 0 ->
      Fanout
        {
          producers = 1 + Rng.int rng 12;
          consumers = 1 + Rng.int rng 24;
        }
  | 1 -> Phase_flip { period = 1 + Rng.int rng 4096 }
  | _ ->
      let chains = 2 + Rng.int rng 15 in
      Copy_storm { chains; stride = 1 + Rng.int rng (chains - 1) }

let all =
  [
    ("adv-fanout", synth (Fanout { producers = 4; consumers = 24 }));
    ("adv-flip", synth (Phase_flip { period = 64 }));
    ("adv-storm", synth (Copy_storm { chains = 8; stride = 3 }));
  ]
