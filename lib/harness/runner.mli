(** Run (simulation point × machine × configuration) triples and
    collect statistics — the trace-driven methodology of §5.1, with
    every configuration replaying the identical dynamic stream.

    {2 Parallel execution}

    {!run_benchmark}, {!run_suite} and {!run_grouped} shard their
    (profile × simulation-point) work items across OCaml domains
    ([domains], default {!Clusteer_util.Parallel.default_domains}).
    Under the default {!Clusteer_util.Parallel.Static} strategy the
    items are pre-partitioned into contiguous per-domain shards before
    spawn; each domain simulates against {b private} state — a counter
    registry passed down to the policies and the engine, an optional
    self-profiler, and a reuse context of cached workloads, compiled
    annotations and reset-in-place engines — so concurrent shards
    never share mutable state and the per-point allocation rate stays
    low (OCaml 5 minor collections are stop-the-world across all
    domains; the allocation-heavy per-item rebuild is what made the
    earlier harness anti-scale). Shard registries are merged into
    {!Clusteer_obs.Counters.default} in shard (= input) order once all
    shards complete. Under {!Clusteer_util.Parallel.Steal} items are
    claimed dynamically off a shared cursor and each item rebuilds its
    state against a per-item registry — kept for genuinely uneven work
    (the service layer's request batches).

    Since each point's simulation is a pure function of its trace seed
    and the machine, and since the merges are order-preserving (and
    {!Clusteer_obs.Counters.merge} is commutative and associative over
    disjoint observation streams), both strategies and every domain
    count produce results and merged counter totals bit-identical to a
    sequential [domains:1] run. *)

open Clusteer_uarch
open Clusteer_workloads

type point_result = {
  point : Pinpoints.point;
  runs : (string * Stats.t) list;
      (** configuration name -> statistics, in configuration order *)
}

val trace_seed : Pinpoints.point -> int
(** Deterministic per-point generator seed: a splitmix64-style mix of
    the profile's master seed and the phase index. Distinct
    (seed, index) pairs map to distinct trace seeds across the whole
    realistic range (the previous affine formula collided). *)

val salted_trace_seed : salt:int -> Pinpoints.point -> int
(** {!trace_seed} re-mixed with [salt] through the same splitmix64
    finalizer. [salt = 0] is the identity (exactly {!trace_seed});
    each nonzero salt derives an independent, equally deterministic
    dynamic stream for the same point. The auto-tuner's AB tie-breaks
    replicate measurements over salts [1..n]. *)

val default_warmup : int -> int
(** Default warmup for a measured budget of [uops] committed
    micro-ops: half the measured length, clamped to \[2,000, 10,000\]
    — and always strictly below [uops], so tiny runs still make
    measurable progress. *)

val run_point :
  ?warmup:int ->
  ?obs:(string -> Clusteer_obs.Sink.t option) ->
  ?registry:Clusteer_obs.Counters.registry ->
  ?profile:Clusteer_obs.Profile.t ->
  ?params:Clusteer.Configuration.params ->
  ?trace_salt:int ->
  machine:Config.t ->
  configs:Clusteer.Configuration.t list ->
  uops:int ->
  Pinpoints.point ->
  point_result
(** Build the point's workload, compile each configuration's
    annotation, and simulate [uops] committed micro-ops per
    configuration, after a cache/predictor warmup phase (default:
    {!default_warmup}).

    [obs] maps a configuration name to the observability sink to
    install in that configuration's engine ([None] = uninstrumented,
    the default for every configuration). [registry] receives the
    policies' and the engine's introspection counters (default
    {!Clusteer_obs.Counters.default}). [profile] attaches the pipeline
    self-profiler to every engine created for the point.

    [params] tunes every steering/compiler knob at once (default
    {!Clusteer.Configuration.default_params}); it applies uniformly to
    every configuration of the call, which keeps the per-domain
    annotation caches (keyed by configuration name) sound.
    [trace_salt] (default 0 = the canonical stream) replays the point
    on the {!salted_trace_seed} stream instead.

    Each engine run also adds its committed micro-ops to the
    [harness.uops_committed] counter of [registry] — the figure the
    run ledger divides GC allocation by. *)

val run_workload :
  ?warmup:int ->
  ?seed:int ->
  ?obs:(string -> Clusteer_obs.Sink.t option) ->
  ?registry:Clusteer_obs.Counters.registry ->
  ?profile:Clusteer_obs.Profile.t ->
  ?params:Clusteer.Configuration.params ->
  machine:Config.t ->
  configs:Clusteer.Configuration.t list ->
  uops:int ->
  Synth.t ->
  (string * Stats.t) list
(** Run an explicit workload (a {!Clusteer_workloads.Synth.t}, e.g. a
    hand-built {!Clusteer_workloads.Kernels} kernel) under each
    configuration on the identical trace. [obs] and [registry] as in
    {!run_point}. *)

val map_isolated :
  ?domains:int ->
  ?chunk:int ->
  ?strategy:Clusteer_util.Parallel.strategy ->
  ?into:Clusteer_obs.Counters.registry ->
  (registry:Clusteer_obs.Counters.registry -> 'a -> 'b) ->
  'a list ->
  'b list
(** Registry-isolated parallel map: run [f] over the items on up to
    [domains] domains, handing [f] a {b private} counter registry —
    one per contiguous shard under {!Clusteer_util.Parallel.Static}
    (the default), one per item under
    {!Clusteer_util.Parallel.Steal} — then merge the private
    registries into [into] (default {!Clusteer_obs.Counters.default})
    in input order. Results keep input order. [chunk] only applies to
    the stealing strategy. Both groupings merge to bit-identical
    totals ({!Clusteer_obs.Counters.merge} is commutative and
    associative); as long as [f] is deterministic per item, a parallel
    run is bit-identical to a sequential one. This is the primitive
    behind {!run_suite} and the service layer's worker pool. *)

val run_benchmark :
  ?warmup:int ->
  ?domains:int ->
  ?chunk:int ->
  ?strategy:Clusteer_util.Parallel.strategy ->
  ?profiled:bool ->
  ?params:Clusteer.Configuration.params ->
  ?trace_salt:int ->
  machine:Config.t ->
  configs:Clusteer.Configuration.t list ->
  uops:int ->
  Profile.t ->
  point_result list
(** All PinPoints phases of one benchmark, sharded across domains. *)

val run_suite :
  ?progress:(string -> unit) ->
  ?warmup:int ->
  ?domains:int ->
  ?chunk:int ->
  ?strategy:Clusteer_util.Parallel.strategy ->
  ?profiled:bool ->
  ?params:Clusteer.Configuration.params ->
  ?trace_salt:int ->
  machine:Config.t ->
  configs:Clusteer.Configuration.t list ->
  uops:int ->
  Profile.t list ->
  point_result list
(** Whole-suite sweep, sharded across domains at simulation-point
    granularity; results keep (profile, point) input order. [progress]
    is called once per benchmark, from whichever domain picks up the
    benchmark's first point — ordering across benchmarks is therefore
    not guaranteed under [domains > 1]. *)

val run_grouped :
  ?progress:(string -> unit) ->
  ?warmup:int ->
  ?domains:int ->
  ?chunk:int ->
  ?strategy:Clusteer_util.Parallel.strategy ->
  ?profiled:bool ->
  ?params:Clusteer.Configuration.params ->
  ?trace_salt:int ->
  machine:Config.t ->
  configs:Clusteer.Configuration.t list ->
  uops:int ->
  Profile.t list ->
  (Profile.t * point_result list) list
(** {!run_suite}, with the flat results regrouped per profile (in
    input order) — the shape the experiment sweeps consume. *)

val weighted_metric :
  point_result list -> config:string -> f:(Stats.t -> float) -> float
(** Phase-weighted metric for one configuration over one benchmark's
    point results. *)

val weighted_pair_metric :
  point_result list ->
  config_a:string ->
  config_b:string ->
  f:(Stats.t -> Stats.t -> float) ->
  float
(** Phase-weighted metric comparing two configurations point by
    point (e.g. slowdown of a vs b). *)

val measured : (unit -> 'a) -> 'a * float * Clusteer_obs.Ledger.gc_delta
(** [measured f] runs [f] and returns its result together with the
    wall-clock seconds and [Gc.quick_stat] deltas it cost — the shape
    the run ledger records for every entry. *)
