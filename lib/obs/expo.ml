(* Prometheus-style text exposition of a counter registry.

   The output is a pure function of the registry contents: metrics are
   emitted name-sorted (counters first, then histograms), names are
   mangled deterministically and floats print through one fixed
   formatter — so a golden test can pin the exact bytes and a repeated
   scrape of an idle server is byte-identical. *)

let metric_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(* One fixed float formatter for every non-integer sample value. *)
let fmt_float v = Printf.sprintf "%.6g" v

let render_to_buffer buf registry =
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" m);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" m v))
    (Counters.counters registry);
  List.iter
    (fun (name, h) ->
      let m = metric_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" m);
      (* Cumulative occupancy with the bucket's largest covered value
         as the [le] bound, up to the highest non-empty bucket. *)
      let cum = ref 0 in
      Array.iteri
        (fun i n ->
          cum := !cum + n;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" m
               (Counters.bucket_hi i) !cum))
        (Counters.buckets h);
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m
           (Counters.hist_count h));
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %d\n" m (Counters.hist_sum h));
      Buffer.add_string buf
        (Printf.sprintf "%s_count %d\n" m (Counters.hist_count h));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s_quantile gauge\n" m);
      List.iter
        (fun (q, p) ->
          Buffer.add_string buf
            (Printf.sprintf "%s_quantile{q=\"%s\"} %s\n" m q
               (fmt_float (Counters.percentile h p))))
        [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ])
    (Counters.histograms registry)

let render registry =
  let buf = Buffer.create 1024 in
  render_to_buffer buf registry;
  Buffer.contents buf
