module Rng = Clusteer_util.Rng

type point = {
  benchmark : string;
  index : int;
  weight : float;
  profile : Profile.t;
}

let jitter rng (p : Profile.t) index =
  let scale_choices = [| 0.5; 0.75; 1.0; 1.0; 1.5; 2.0 |] in
  let fscale = Rng.pick rng scale_choices in
  let hb =
    Float.min 1.0
      (Float.max 0.0
         (p.Profile.hard_branch_frac *. (0.7 +. Rng.float rng 0.6)))
  in
  let mem =
    Float.min 0.9
      (Float.max 0.02 (p.Profile.mem_ratio *. (0.8 +. Rng.float rng 0.4)))
  in
  {
    p with
    Profile.seed = (p.Profile.seed * 1009) + (index * 7919) + 13;
    footprint_kb =
      max 4 (int_of_float (float_of_int p.Profile.footprint_kb *. fscale));
    hard_branch_frac = hb;
    mem_ratio = mem;
  }

let points (p : Profile.t) =
  Profile.validate p;
  let rng = Rng.create (p.Profile.seed lxor 0x9E3779B9) in
  let raw =
    List.init p.Profile.phases (fun i ->
        let w = 0.5 +. Rng.float rng 1.0 in
        (i, w, jitter rng p i))
  in
  let total = List.fold_left (fun acc (_, w, _) -> acc +. w) 0.0 raw in
  List.map
    (fun (i, w, prof) ->
      {
        benchmark = p.Profile.name;
        index = i;
        weight = w /. total;
        profile = prof;
      })
    raw

let weighted points ~f =
  List.fold_left (fun acc pt -> acc +. (pt.weight *. f pt)) 0.0 points
