lib/steer/thermal_aware.mli: Clusteer_uarch
