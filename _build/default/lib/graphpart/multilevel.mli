(** Multilevel partitioning driver (Karypis-Kumar scheme, paper §3.3):
    coarsen by heavy-edge matching until the graph is small, split the
    coarsest graph, then project back level by level with boundary
    refinement at each step. *)

val partition :
  ?seed:int ->
  ?max_imbalance:float ->
  ?refine_passes:int ->
  Wgraph.t ->
  k:int ->
  Partition.t
(** Partition into [k] parts. [max_imbalance] (default 1.25) bounds
    each part's weight relative to the ideal; [refine_passes] (default
    4) bounds refinement rounds per level. Coarsening stops when the
    graph has at most [k] nodes — "the number of coarse nodes equals
    the number of clusters" — or stops shrinking. *)

val initial_partition : Wgraph.t -> k:int -> Partition.t
(** Greedy balanced split of a (small) graph: nodes in descending
    weight order go to the currently lightest part. Exposed for
    testing. *)
