lib/vliw/list_sched.mli: Clusteer_ddg Machine Schedule
