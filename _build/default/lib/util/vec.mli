(** Growable integer arrays.

    The simulator allocates a fresh value tag per dispatched micro-op
    and keeps per-tag side information (location masks, origin
    cluster); a dense auto-growing int vector is the cheapest store
    for that. *)

type t

val create : ?initial:int -> default:int -> unit -> t
(** [default] fills newly exposed slots. *)

val length : t -> int
(** One past the highest index ever written or [push]ed. *)

val get : t -> int -> int
(** [get t i] returns the default for indexes never written (but still
    raises on negative indexes). *)

val set : t -> int -> int -> unit
(** Auto-grows. *)

val push : t -> int -> int
(** Append and return the new element's index. *)

val clear : t -> unit
