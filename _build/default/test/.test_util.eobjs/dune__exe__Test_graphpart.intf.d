test/test_graphpart.mli:
