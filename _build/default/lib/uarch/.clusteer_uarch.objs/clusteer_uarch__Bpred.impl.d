lib/uarch/bpred.ml: Array
