(* End-to-end tests of the csteer command-line interface, run as a
   subprocess against the built executable. *)

let exe =
  (* dune runtest runs in _build/default/test; dune exec from the
     project root. *)
  let candidates =
    [ "../bin/csteer.exe"; "_build/default/bin/csteer.exe"; "bin/csteer.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/csteer.exe"

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_capture args =
  let tmp = Filename.temp_file "csteer_out" ".txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>/dev/null" (Filename.quote exe) args
      (Filename.quote tmp)
  in
  let code = Sys.command cmd in
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let out = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  (code, out)

(* Like [run_capture] but folds stderr into the captured output, for
   asserting on diagnostic lines. *)
let run_capture_all args =
  let tmp = Filename.temp_file "csteer_out" ".txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe) args
      (Filename.quote tmp)
  in
  let code = Sys.command cmd in
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let out = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  (code, out)

let contains haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let test_list () =
  let code, out = run_capture "list" in
  check_int "exit 0" 0 code;
  check_bool "lists mcf" true (contains out "181.mcf");
  check_bool "lists apsi" true (contains out "301.apsi")

let test_simulate () =
  let code, out = run_capture "simulate -w gzip-1 -p vc2 -n 3000" in
  check_int "exit 0" 0 code;
  check_bool "prints ipc" true (contains out "ipc");
  check_bool "prints energy" true (contains out "energy")

let test_simulate_json_roundtrip () =
  let code, out =
    run_capture "simulate -w gzip-1 -p vc2 -n 3000 --stats-interval 500 --json"
  in
  check_int "exit 0" 0 code;
  (* The whole stdout is one machine-readable JSON document. *)
  match Clusteer_obs.Json.of_string (String.trim out) with
  | Error e -> Alcotest.failf "--json output unparseable: %s" e
  | Ok doc ->
      let module J = Clusteer_obs.Json in
      check_bool "workload" true
        (J.member "workload" doc = Some (J.Str "164.gzip-1"));
      let committed =
        Option.bind (J.member "stats" doc) (J.member "committed")
      in
      check_bool "committed count" true
        (match Option.bind committed J.to_int with
        | Some n -> n >= 3000
        | None -> false);
      check_bool "counters present" true
        (Option.bind (J.member "counters" doc) (J.member "counters") <> None);
      check_bool "interval series present" true
        (match J.member "intervals" doc with
        | Some (J.List (_ :: _)) -> true
        | _ -> false)

let test_simulate_trace_out () =
  let trace = Filename.temp_file "csteer_trace" ".json" in
  let code, _ =
    run_capture
      (Printf.sprintf
         "simulate -w gzip-1 -n 3000 --trace-out %s --trace-format json \
          --stats-interval 500"
         (Filename.quote trace))
  in
  check_int "exit 0" 0 code;
  let ic = open_in trace in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove trace;
  match Clusteer_obs.Json.of_string content with
  | Error e -> Alcotest.failf "trace file unparseable: %s" e
  | Ok doc ->
      check_bool "has trace events" true
        (match Clusteer_obs.Json.member "traceEvents" doc with
        | Some (Clusteer_obs.Json.List (_ :: _)) -> true
        | _ -> false)

let test_simulate_unknown_workload () =
  let code, _ = run_capture "simulate -w not-a-benchmark" in
  check_bool "nonzero exit" true (code <> 0)

let test_compile_emit_annotation () =
  let annot = Filename.temp_file "csteer" ".annot" in
  let code, out =
    run_capture (Printf.sprintf "compile -w gzip-1 -p vc2 --emit %s" annot)
  in
  check_int "exit 0" 0 code;
  check_bool "reports chains" true (contains out "chains");
  (* The emitted file parses back through the library. *)
  let a = Clusteer_isa.Annot_io.load ~path:annot in
  Sys.remove annot;
  check_int "two vcs" 2 a.Clusteer_isa.Annot.virtual_clusters

let test_stats () =
  let code, out = run_capture "stats -w daxpy -n 5000" in
  check_int "exit 0" 0 code;
  check_bool "mentions mem" true (contains out "mem")

let test_vliw () =
  let code, out = run_capture "vliw -w dot" in
  check_int "exit 0" 0 code;
  check_bool "prints II" true (contains out "II=")

let test_sweep_csv () =
  let csv = Filename.temp_file "csteer_sweep" ".csv" in
  let code, _ = run_capture (Printf.sprintf "sweep -w gzip-1 -n 2000 -o %s" csv) in
  check_int "exit 0" 0 code;
  let ic = open_in csv in
  let header = input_line ic in
  let rows = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr rows
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove csv;
  Alcotest.(check string) "header"
    "clusters,config,cycles,ipc,copies,alloc_stalls" header;
  (* 3 cluster counts x 9 configurations *)
  check_int "rows" 27 !rows

let test_experiment_tables () =
  let code, out = run_capture "experiment tables" in
  check_int "exit 0" 0 code;
  check_bool "table 1" true (contains out "hybrid virtual clustering");
  check_bool "table 2" true (contains out "trace cache");
  check_bool "table 3" true (contains out "Occupancy-aware")

let test_experiment_sec21 () =
  let code, out = run_capture "experiment sec21" in
  check_int "exit 0" 0 code;
  check_bool "paper delta" true (contains out "(paper: 2)")

let temp_dirname prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let test_ledger_end_to_end () =
  let dir = temp_dirname "csteer_ledger" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* --ledger implies profiling: the run is recorded with phase-timing
     percentiles and GC accounting. *)
  let code, _ =
    run_capture
      (Printf.sprintf "simulate -w gzip-1 -p vc2 -n 2000 --ledger %s"
         (Filename.quote dir))
  in
  check_int "simulate exit 0" 0 code;
  check_bool "index written" true
    (Sys.file_exists (Filename.concat dir "index.jsonl"));
  let code, out =
    run_capture (Printf.sprintf "runs list --dir %s --json" (Filename.quote dir))
  in
  check_int "runs list exit 0" 0 code;
  (match Clusteer_obs.Json.of_string (String.trim out) with
  | Error e -> Alcotest.failf "runs list --json unparseable: %s" e
  | Ok (Clusteer_obs.Json.List [ entry ]) ->
      let module J = Clusteer_obs.Json in
      (match J.member "kind" entry with
      | Some (J.Str "simulate") -> ()
      | _ -> Alcotest.fail "kind must be simulate");
      check_bool "words/uop recorded" true
        (J.member "minor_words_per_uop" entry <> None)
  | Ok _ -> Alcotest.fail "expected exactly one ledger entry");
  let code, out =
    run_capture (Printf.sprintf "runs show --dir %s 1" (Filename.quote dir))
  in
  check_int "runs show exit 0" 0 code;
  check_bool "full entry has gc accounting" true
    (contains out "engine_minor_words_per_uop");
  check_bool "full entry has phase percentiles" true
    (contains out "profile.engine.commit.ns");
  check_bool "full entry has p99" true (contains out "p99");
  (* gc keeps the newest and reports what it removed. *)
  let code, _ =
    run_capture
      (Printf.sprintf "simulate -w gzip-1 -p op -n 2000 --ledger %s"
         (Filename.quote dir))
  in
  check_int "second run exit 0" 0 code;
  let code, out =
    run_capture (Printf.sprintf "runs gc --dir %s --keep 1" (Filename.quote dir))
  in
  check_int "runs gc exit 0" 0 code;
  check_bool "reports removal" true (contains out "removed 1");
  let code, out =
    run_capture (Printf.sprintf "runs list --dir %s --json" (Filename.quote dir))
  in
  check_int "list after gc exit 0" 0 code;
  check_bool "newest survives" true (contains out "\"id\":2");
  check_bool "oldest gone" true (not (contains out "\"id\":1"))

let test_metrics_local_dump () =
  let code, out = run_capture "metrics -w gzip-1 -n 2000" in
  check_int "exit 0" 0 code;
  check_bool "typed counter" true (contains out "# TYPE");
  check_bool "engine histograms exposed" true
    (contains out "engine_copyq_depth");
  check_bool "profiler phases exposed" true
    (contains out "profile_engine_commit_ns_count 1")

let test_unwritable_paths_diagnose () =
  (* A file where a directory is needed: mkdir fails with ENOTDIR /
     EEXIST and the CLI must answer with one diagnostic line and exit
     1, not a backtrace. *)
  let file = Filename.temp_file "csteer_notadir" "" in
  Fun.protect ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
  @@ fun () ->
  let bad = Filename.concat file "sub" in
  let code, out =
    run_capture_all
      (Printf.sprintf "simulate -w gzip-1 -n 500 --ledger %s"
         (Filename.quote bad))
  in
  check_int "ledger path rejected" 1 code;
  check_bool "one-line diagnostic, not a backtrace" true
    (contains out "csteer:" && not (contains out "Raised at"));
  let code, out =
    run_capture_all
      (Printf.sprintf "simulate -w gzip-1 -n 500 --trace-out %s"
         (Filename.quote bad))
  in
  check_int "trace path rejected" 1 code;
  check_bool "one-line diagnostic, not a backtrace" true
    (contains out "csteer:" && not (contains out "Raised at"));
  let code, _ =
    run_capture_all (Printf.sprintf "runs list --dir %s" (Filename.quote bad))
  in
  check_int "runs dir rejected" 1 code

let test_unknown_experiment () =
  let code, _ = run_capture "experiment not-a-figure" in
  check_bool "nonzero exit" true (code <> 0)

let () =
  Alcotest.run "clusteer_cli"
    [
      ( "csteer",
        [
          Alcotest.test_case "list" `Quick test_list;
          Alcotest.test_case "simulate" `Slow test_simulate;
          Alcotest.test_case "simulate --json" `Slow test_simulate_json_roundtrip;
          Alcotest.test_case "simulate --trace-out" `Slow test_simulate_trace_out;
          Alcotest.test_case "unknown workload" `Quick test_simulate_unknown_workload;
          Alcotest.test_case "compile --emit" `Quick test_compile_emit_annotation;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "vliw" `Quick test_vliw;
          Alcotest.test_case "sweep csv" `Slow test_sweep_csv;
          Alcotest.test_case "experiment tables" `Quick test_experiment_tables;
          Alcotest.test_case "experiment sec21" `Quick test_experiment_sec21;
          Alcotest.test_case "unknown experiment" `Quick test_unknown_experiment;
          Alcotest.test_case "ledger end to end" `Slow test_ledger_end_to_end;
          Alcotest.test_case "metrics local dump" `Slow test_metrics_local_dump;
          Alcotest.test_case "unwritable paths" `Quick
            test_unwritable_paths_diagnose;
        ] );
    ]
