(** The event-sink interface the engine emits into.

    A sink is a pair of callbacks plus a sampling period. The engine
    holds an [t option]: with [None] installed every emission site is
    a single pattern match that constructs nothing — observability off
    costs no allocation and no branches beyond that match (the
    zero-overhead-when-off guarantee the test suite checks by comparing
    final statistics bit-for-bit against an uninstrumented run). *)

type t = {
  emit : Event.t -> unit;
  interval : int;
      (** sampling period in cycles; [0] disables interval snapshots *)
  on_snapshot : Interval.snapshot -> unit;
      (** called every [interval] cycles with cumulative counters *)
}

val null : t
(** Swallows everything ([interval = 0]); for overhead measurement. *)

val tee : t -> t -> t
(** Duplicate events and snapshots to both sinks; the sampling period
    is the first sink's. *)
