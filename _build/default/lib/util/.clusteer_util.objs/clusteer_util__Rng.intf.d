lib/util/rng.mli:
