examples/kernels_study.mli:
