lib/uarch/energy.ml: Stats
