let call_lines ~socket lines =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let oc = Unix.out_channel_of_descr fd in
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        lines;
      flush oc;
      (* Half-close: the server reads until EOF before dispatching the
         batch, then writes its responses back on the same socket. *)
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let ic = Unix.in_channel_of_descr fd in
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let call ~socket commands =
  let replies =
    call_lines ~socket (List.map Protocol.encode_command commands)
  in
  let parsed = List.map Protocol.parse_response replies in
  let missing = List.length commands - List.length parsed in
  if missing > 0 then
    parsed @ List.init missing (fun _ -> Error "connection closed early")
  else parsed

let one ~socket command =
  match call ~socket [ command ] with
  | [ r ] -> r
  | _ -> Error "expected exactly one response"

let submit ~socket ?(id = 0) ?deadline_ms request =
  one ~socket (Protocol.Simulate { id; deadline_ms; request })

let stats ~socket =
  match one ~socket Protocol.Stats with
  | Ok (Protocol.Stats_reply s) -> Ok s
  | Ok _ -> Error "unexpected response to stats"
  | Error e -> Error e

let metrics ~socket =
  match one ~socket Protocol.Metrics with
  | Ok (Protocol.Metrics_reply text) -> Ok text
  | Ok _ -> Error "unexpected response to metrics"
  | Error e -> Error e

let shutdown ~socket =
  match one ~socket Protocol.Shutdown with
  | Ok Protocol.Bye -> Ok ()
  | Ok _ -> Error "unexpected response to shutdown"
  | Error e -> Error e
