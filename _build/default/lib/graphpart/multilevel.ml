let initial_partition g ~k =
  let n = Wgraph.node_count g in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b -> compare (Wgraph.node_weight g b) (Wgraph.node_weight g a))
    order;
  let weights = Array.make k 0.0 in
  let part = Array.make n 0 in
  Array.iter
    (fun v ->
      let lightest = ref 0 in
      for p = 1 to k - 1 do
        if weights.(p) < weights.(!lightest) then lightest := p
      done;
      part.(v) <- !lightest;
      weights.(!lightest) <- weights.(!lightest) +. Wgraph.node_weight g v)
    order;
  part

let partition ?(seed = 1) ?(max_imbalance = 1.25) ?(refine_passes = 4) g ~k =
  if k <= 0 then invalid_arg "Multilevel.partition: k must be positive";
  if k = 1 then Array.make (Wgraph.node_count g) 0
  else begin
    (* Coarsening phase. Coarse nodes are capped below a part's ideal
       weight so the coarsest graph still admits a balanced split. *)
    let max_node_weight =
      Wgraph.total_weight g /. float_of_int k *. 0.75
    in
    let rec coarsen levels g depth =
      if Wgraph.node_count g <= k || depth > 40 then (levels, g)
      else begin
        let level = Coarsen.step ~seed:(seed + depth) ~max_node_weight g in
        if Wgraph.node_count level.Coarsen.graph >= Wgraph.node_count g then
          (levels, g)
        else coarsen (level :: levels) level.Coarsen.graph (depth + 1)
      end
    in
    let levels, coarsest = coarsen [] g 0 in
    let part = ref (initial_partition coarsest ~k) in
    Refine.run coarsest !part ~k ~max_imbalance ~passes:refine_passes;
    (* Uncoarsening phase: project and refine at every level. [levels]
       holds the coarsest level first; each level's fine graph is the
       next element's coarse graph, bottoming out at the input [g]. *)
    let rec unwind levels part =
      match levels with
      | [] -> part
      | (level : Coarsen.level) :: finer ->
          let fine_graph =
            match finer with
            | [] -> g
            | next :: _ -> next.Coarsen.graph
          in
          let projected = Coarsen.project level part in
          Refine.run fine_graph projected ~k ~max_imbalance
            ~passes:refine_passes;
          unwind finer projected
    in
    unwind levels !part
  end
